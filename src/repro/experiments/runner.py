"""Build parameter servers by name and run the paper's ML tasks on them.

The experiment figures compare a fixed set of *systems*:

============================  =====================================================
name                          meaning
============================  =====================================================
``classic``                   Classic PS with PS-Lite-style inter-process local
                              access (the "Classic PS (PS-Lite)" lines).
``classic_fast_local``        Classic PS with shared-memory local access but still
                              static allocation ("Classic PS with fast local
                              access").
``lapse``                     Lapse: dynamic parameter allocation + shared memory.
``lapse_clustering_only``     Lapse using only the data-clustering PAL technique
                              (no latency hiding); KGE figures only.
``stale_ssp``                 Stale PS with client-based synchronization (Petuum
                              SSP).
``stale_ssppush``             Stale PS with server-based synchronization (Petuum
                              SSPPush).
``lowlevel``                  The task-specific low-level DSGD implementation
                              (matrix factorization only, Figure 9).
``replica``                   Replication-based PS (beyond the paper's systems):
                              eager hot-key replication, local writes, and a
                              time-triggered synchronization loop.
``replica_clock``             The same replica PS with clock-triggered
                              synchronization (updates propagate when workers
                              advance their clocks).
``hybrid``                    Hybrid management (beyond the paper's systems;
                              the NuPS direction of the paper's outlook):
                              replicate hot keys, relocate the long tail —
                              per-key composition of the relocation and
                              replication policies.
============================  =====================================================

``run_*_experiment`` functions build the cluster at a given parallelism
(``num_nodes`` x ``workers_per_node``), run the task for a number of epochs and
return a :class:`TaskRunResult` with epoch run times, losses, PS metrics and
network traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster import ClusterSchedule, ElasticCluster
from repro.config import ClusterConfig, CostModel, ParameterServerConfig
from repro.data import generate_corpus, generate_knowledge_graph, generate_matrix
from repro.errors import ExperimentError
from repro.manual import LowLevelDSGD, LowLevelDSGDConfig
from repro.ml import (
    KGEConfig,
    KGETrainer,
    MatrixFactorizationConfig,
    MatrixFactorizationTrainer,
    Word2VecConfig,
    Word2VecTrainer,
)
from repro.ml.kge import KGEKeySpace
from repro.ml.results import EpochResult
from repro.ps import (
    ClassicIPCPS,
    ClassicSharedMemoryPS,
    HybridPS,
    LapsePS,
    ReplicaPS,
    StalePS,
)
from repro.ps.base import ParameterServer
from repro.ps.metrics import PSMetrics
from repro.ps.partition import ElasticPartitioner, KeyPartitioner

#: Systems compared across the evaluation (see module docstring).
SYSTEMS = (
    "classic",
    "classic_fast_local",
    "lapse",
    "lapse_clustering_only",
    "stale_ssp",
    "stale_ssppush",
    "lowlevel",
    "replica",
    "replica_clock",
    "hybrid",
)

#: Hot-key threshold used by the ``hybrid`` system: a node replicates a key
#: it reads remotely this many times; colder keys stay relocatable.
HYBRID_HOT_KEY_THRESHOLD = 2

#: Worker threads per node used throughout the paper's evaluation.
PAPER_WORKERS_PER_NODE = 4


def make_parameter_server(
    system: str,
    cluster: ClusterConfig,
    ps_config: ParameterServerConfig,
    partitioner: Optional[KeyPartitioner] = None,
    durability: Optional[Any] = None,
    backend: str = "sim",
    engine: str = "sim",
    jobs: int = 1,
    trace: Optional[Any] = None,
) -> ParameterServer:
    """Instantiate the PS variant named ``system`` on ``cluster``.

    ``partitioner`` optionally overrides the default range partitioner — the
    elastic experiments pass an :class:`~repro.ps.partition.ElasticPartitioner`
    restricted to the initially active nodes.  ``durability`` optionally
    installs the durability subsystem (a
    :class:`~repro.durability.DurabilityConfig`): per-node WAL + checkpoints;
    ``None`` leaves the fast path untouched.  ``trace`` optionally installs
    the tracing/telemetry subsystem (a :class:`~repro.obs.TraceConfig`):
    per-op spans, latency histograms, counter time series, and Perfetto
    export via ``ps.tracer`` — observation only, so traced runs stay
    bit-identical; ``None`` leaves the fast path untouched.

    ``backend`` selects the execution substrate: ``"sim"`` (default) runs on
    the discrete-event simulator, ``"real"`` on actual processes with
    shared-memory parameter shards (:class:`repro.backend.RealParameterServer`
    — classic, classic_fast_local, and lapse only).  The real backend returns
    an object satisfying the same client/metrics API; call ``shutdown()`` on
    it (or use it as a context manager) to release the shared memory.

    ``engine`` selects the simulator's event engine: ``"sim"`` (default) is
    the sequential kernel, ``"parallel"`` shards the nodes across ``jobs``
    forked processes with conservative time-window sync
    (:mod:`repro.simnet.parallel`) — bit-identical results, multicore
    wall-clock.  Elastic membership changes and durable (WAL/checkpoint)
    runs shard too: membership events become window barriers and per-shard
    WAL segments are stitched into the cluster total order at epoch merge.
    The few workloads the window protocol cannot shard (scheduled node
    failures, WAL truncation, single-node clusters, zero-latency cost
    models) fall back to ``jobs=1`` at run time with a once-per-reason
    warning; the reason is recorded on the run result.
    """
    if engine not in ("sim", "parallel"):
        raise ExperimentError(f"unknown engine {engine!r}; choose 'sim' or 'parallel'")
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1:
        engine = "parallel"
    if engine == "parallel" and backend == "real":
        raise ExperimentError(
            "engine='parallel' applies to the simulator; the real backend "
            "has its own process-level parallelism"
        )
    if backend == "real":
        from repro.backend import REAL_BACKEND_SYSTEMS, RealParameterServer

        if system not in REAL_BACKEND_SYSTEMS:
            raise ExperimentError(
                f"system {system!r} is not available on the real backend; "
                f"choose one of {', '.join(REAL_BACKEND_SYSTEMS)}"
            )
        if partitioner is not None:
            raise ExperimentError(
                "the real backend does not support custom partitioners "
                "(elastic clusters run on the simulator)"
            )
        if durability is not None:
            raise ExperimentError(
                "the real backend does not support the durability subsystem"
            )
        return RealParameterServer(system, cluster, ps_config, trace=trace)
    if backend != "sim":
        raise ExperimentError(f"unknown backend {backend!r}; choose 'sim' or 'real'")
    ps = _make_sim_ps(system, cluster, ps_config, partitioner, durability, trace)
    if jobs > 1:
        ps.jobs = jobs
        ps.sim.jobs = jobs
    return ps


def _make_sim_ps(
    system: str,
    cluster: ClusterConfig,
    ps_config: ParameterServerConfig,
    partitioner: Optional[KeyPartitioner],
    durability: Optional[Any],
    trace: Optional[Any] = None,
) -> ParameterServer:
    extras = dict(partitioner=partitioner, durability=durability, trace=trace)
    if system == "classic":
        return ClassicIPCPS(cluster, ps_config, **extras)
    if system == "classic_fast_local":
        return ClassicSharedMemoryPS(cluster, ps_config, **extras)
    if system in ("lapse", "lapse_clustering_only"):
        return LapsePS(cluster, ps_config, **extras)
    if system == "stale_ssp":
        return StalePS(cluster, replace(ps_config, stale_server_push=False), **extras)
    if system == "stale_ssppush":
        return StalePS(cluster, replace(ps_config, stale_server_push=True), **extras)
    if system == "replica":
        return ReplicaPS(
            cluster, replace(ps_config, replica_sync_trigger="time"), **extras
        )
    if system == "replica_clock":
        return ReplicaPS(
            cluster, replace(ps_config, replica_sync_trigger="clock"), **extras
        )
    if system == "hybrid":
        # Threshold > 1 so that one-off reads stay relocatable: only keys a
        # node keeps coming back to are replicated there.
        return HybridPS(
            cluster,
            replace(
                ps_config,
                replica_sync_trigger="time",
                hot_key_policy="access_count",
                hot_key_threshold=HYBRID_HOT_KEY_THRESHOLD,
            ),
            **extras,
        )
    raise ExperimentError(f"unknown system {system!r}")


@dataclass(frozen=True)
class TaskRunResult:
    """Result of running one task on one system at one parallelism level."""

    task: str
    system: str
    num_nodes: int
    workers_per_node: int
    epochs: List[EpochResult]
    metrics: Optional[PSMetrics]
    remote_messages: int
    bytes_sent: int
    #: Execution substrate the run used: "sim" (epoch durations are simulated
    #: time) or "real" (epoch durations are wall-clock time).
    backend: str = "sim"
    #: Shard count of the parallel simulation engine (1 = sequential kernel).
    jobs: int = 1
    #: Why the parallel engine refused to shard the run (``None`` when it ran
    #: sharded or when ``jobs=1`` was requested in the first place).
    parallel_fallback_reason: Optional[str] = None
    #: Shard count the last epoch actually used (1 after a fallback).
    effective_jobs: int = 1
    #: The run's :class:`~repro.obs.Tracer` when tracing was enabled (call
    #: ``result.tracer.export(path)`` / ``.summary()``); ``None`` otherwise.
    tracer: Optional[Any] = field(default=None, compare=False, repr=False)

    @property
    def epoch_duration(self) -> float:
        """Mean epoch run time (simulated or wall seconds, per ``backend``)."""
        return sum(epoch.duration for epoch in self.epochs) / len(self.epochs)

    @property
    def final_loss(self) -> Optional[float]:
        """Loss after the last epoch (None if not computed)."""
        return self.epochs[-1].loss

    @property
    def parallelism(self) -> str:
        """Human-readable parallelism label, e.g. ``"4x4"``."""
        return f"{self.num_nodes}x{self.workers_per_node}"


# ------------------------------------------------------------------ workloads
@dataclass(frozen=True)
class MFScale:
    """Scaled-down matrix-factorization workload (paper: 10m x 1m / 3.4m x 3m, 1b entries).

    The defaults are chosen so that, with the default cost model, the
    communication-to-computation ratio reproduces the qualitative behaviour of
    Figure 6: the classic PS does not benefit from distribution while Lapse
    scales with the number of nodes.
    """

    num_rows: int = 256
    num_cols: int = 64
    num_entries: int = 12000
    rank: int = 8
    compute_time_per_entry: float = 25e-6


@dataclass(frozen=True)
class KGEScale:
    """Scaled-down KGE workload (paper: DBpedia-500k, 3M triples).

    The default corresponds to the "small" model configuration (frequent PS
    accesses relative to computation — high communication overhead); the
    figure-7 benchmarks pass explicit scales for the large models, whose
    higher per-triple computation time reproduces their lower
    communication-to-computation ratio (Table 4).
    """

    num_entities: int = 300
    num_relations: int = 8
    num_triples: int = 1200
    entity_dim: int = 4
    num_negatives: int = 2
    compute_time_per_triple: float = 10e-6


@dataclass(frozen=True)
class W2VScale:
    """Scaled-down word-vector workload (paper: One Billion Word benchmark)."""

    vocabulary_size: int = 800
    num_sentences: int = 120
    mean_sentence_length: int = 6
    dim: int = 8
    window: int = 2
    num_negatives: int = 3
    compute_time_per_pair: float = 60e-6
    word_skew: float = 0.8
    presample_size: int = 100
    presample_refresh: int = 80


def _cluster(num_nodes: int, workers_per_node: int, seed: int, cost_model: Optional[CostModel]) -> ClusterConfig:
    return ClusterConfig(
        num_nodes=num_nodes,
        workers_per_node=workers_per_node,
        seed=seed,
        cost_model=cost_model or CostModel(),
    )


def run_mf_experiment(
    system: str,
    num_nodes: int,
    scale: Optional[MFScale] = None,
    workers_per_node: int = PAPER_WORKERS_PER_NODE,
    epochs: int = 1,
    compute_loss: bool = False,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    durability: Optional[Any] = None,
    backend: str = "sim",
    jobs: int = 1,
    trace: Optional[Any] = None,
) -> TaskRunResult:
    """Run DSGD matrix factorization (Figures 6 and 9).

    With ``backend="real"`` the same workload executes on actual worker
    processes (classic, classic_fast_local, lapse) and epoch durations are
    wall-clock seconds.  ``trace`` installs the tracing subsystem (ignored by
    the handle-free ``lowlevel`` baseline).
    """
    scale = scale or MFScale()
    matrix = generate_matrix(
        scale.num_rows, scale.num_cols, scale.num_entries, rank=scale.rank, seed=seed
    )
    cluster = _cluster(num_nodes, workers_per_node, seed, cost_model)
    mf_config = MatrixFactorizationConfig(
        rank=scale.rank, compute_time_per_entry=scale.compute_time_per_entry
    )
    if system == "lowlevel" and backend != "sim":
        raise ExperimentError("the low-level baseline only runs on the simulator")
    if system == "lowlevel":
        baseline = LowLevelDSGD(
            cluster,
            matrix,
            LowLevelDSGDConfig(
                rank=scale.rank, compute_time_per_entry=scale.compute_time_per_entry
            ),
            seed=seed,
        )
        epoch_results = baseline.train(num_epochs=epochs, compute_loss=compute_loss)
        return TaskRunResult(
            task="matrix_factorization",
            system=system,
            num_nodes=num_nodes,
            workers_per_node=workers_per_node,
            epochs=epoch_results,
            metrics=None,
            remote_messages=baseline.network.stats.remote_messages,
            bytes_sent=baseline.network.stats.bytes_sent,
        )
    ps_config = ParameterServerConfig(num_keys=scale.num_cols, value_length=scale.rank)
    ps = make_parameter_server(
        system,
        cluster,
        ps_config,
        durability=durability,
        backend=backend,
        jobs=jobs,
        trace=trace,
    )
    try:
        trainer = MatrixFactorizationTrainer(ps, matrix, mf_config, seed=seed)
        epoch_results = trainer.train(num_epochs=epochs, compute_loss=compute_loss)
        return TaskRunResult(
            task="matrix_factorization",
            system=system,
            num_nodes=num_nodes,
            workers_per_node=workers_per_node,
            epochs=epoch_results,
            metrics=ps.metrics(),
            remote_messages=ps.network.stats.remote_messages,
            bytes_sent=ps.network.stats.bytes_sent,
            backend=backend,
            jobs=jobs,
            parallel_fallback_reason=getattr(ps, "_last_fallback_reason", None),
            effective_jobs=getattr(ps, "_last_effective_jobs", 1),
            tracer=ps.tracer,
        )
    finally:
        if backend == "real":
            ps.shutdown()


def run_kge_experiment(
    system: str,
    num_nodes: int,
    model: str = "complex",
    scale: Optional[KGEScale] = None,
    workers_per_node: int = PAPER_WORKERS_PER_NODE,
    epochs: int = 1,
    compute_loss: bool = False,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    durability: Optional[Any] = None,
    backend: str = "sim",
    jobs: int = 1,
    trace: Optional[Any] = None,
) -> TaskRunResult:
    """Run knowledge-graph-embedding training (Figures 1 and 7, Table 5)."""
    if backend != "sim":
        raise ExperimentError(
            "the KGE task only runs on the simulator (backend='sim'); the "
            "real backend currently supports matrix factorization"
        )
    scale = scale or KGEScale()
    graph = generate_knowledge_graph(
        num_entities=scale.num_entities,
        num_relations=scale.num_relations,
        num_triples=scale.num_triples,
        seed=seed,
    )
    kge_config = KGEConfig(
        model=model,
        entity_dim=scale.entity_dim,
        num_negatives=scale.num_negatives,
        compute_time_per_triple=scale.compute_time_per_triple,
        latency_hiding=system != "lapse_clustering_only",
    )
    keyspace = KGEKeySpace(graph, kge_config)
    cluster = _cluster(num_nodes, workers_per_node, seed, cost_model)
    ps_config = ParameterServerConfig(
        num_keys=keyspace.num_keys, value_length=kge_config.value_length
    )
    ps = make_parameter_server(system, cluster, ps_config, jobs=jobs, trace=trace)
    trainer = KGETrainer(ps, graph, kge_config, seed=seed)
    epoch_results = trainer.train(num_epochs=epochs, compute_loss=compute_loss)
    return TaskRunResult(
        task=f"kge_{model}",
        system=system,
        num_nodes=num_nodes,
        workers_per_node=workers_per_node,
        epochs=epoch_results,
        metrics=ps.metrics(),
        remote_messages=ps.network.stats.remote_messages,
        bytes_sent=ps.network.stats.bytes_sent,
        jobs=jobs,
        parallel_fallback_reason=ps._last_fallback_reason,
        effective_jobs=ps._last_effective_jobs,
        tracer=ps.tracer,
    )


# ------------------------------------------------------------ elastic clusters
def make_elastic_mf(
    system: str,
    num_nodes: int,
    initial_nodes: Optional[Sequence[int]] = None,
    schedule: Optional[ClusterSchedule] = None,
    scale: Optional[MFScale] = None,
    workers_per_node: int = PAPER_WORKERS_PER_NODE,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    durability: Optional[Any] = None,
    jobs: int = 1,
    trace: Optional[Any] = None,
):
    """Build an elastic matrix-factorization run: ``(elastic, trainer)``.

    ``num_nodes`` is the cluster *capacity*; ``initial_nodes`` (default: all)
    are active at start, the rest is reserve that a scheduled ``join`` can
    bring in.  The PS is built over an
    :class:`~repro.ps.partition.ElasticPartitioner` restricted to the initial
    nodes, so reserve nodes hold no keys until they join.

    Drive epochs with ``elastic.run_epoch(trainer, compute_loss=...)``.
    """
    if system == "lowlevel":
        raise ExperimentError("the low-level baseline does not support elastic clusters")
    scale = scale or MFScale()
    matrix = generate_matrix(
        scale.num_rows, scale.num_cols, scale.num_entries, rank=scale.rank, seed=seed
    )
    cluster = _cluster(num_nodes, workers_per_node, seed, cost_model)
    ps_config = ParameterServerConfig(num_keys=scale.num_cols, value_length=scale.rank)
    partitioner = ElasticPartitioner(
        scale.num_cols, num_nodes, active_nodes=initial_nodes, kind="range"
    )
    ps = make_parameter_server(
        system,
        cluster,
        ps_config,
        partitioner=partitioner,
        durability=durability,
        jobs=jobs,
        trace=trace,
    )
    elastic = ElasticCluster(ps, initial_nodes=initial_nodes, schedule=schedule)
    mf_config = MatrixFactorizationConfig(
        rank=scale.rank, compute_time_per_entry=scale.compute_time_per_entry
    )
    trainer = MatrixFactorizationTrainer(ps, matrix, mf_config, seed=seed)
    return elastic, trainer


def run_elastic_mf_experiment(
    system: str,
    num_nodes: int,
    initial_nodes: Optional[Sequence[int]] = None,
    schedule: Optional[ClusterSchedule] = None,
    scale: Optional[MFScale] = None,
    workers_per_node: int = PAPER_WORKERS_PER_NODE,
    epochs: int = 1,
    compute_loss: bool = False,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    durability: Optional[Any] = None,
    jobs: int = 1,
    trace: Optional[Any] = None,
) -> TaskRunResult:
    """Elastic counterpart of :func:`run_mf_experiment`.

    Runs the same DSGD workload while the scripted ``schedule`` joins, drains,
    or fails nodes.  With an empty schedule and a full initial node set the
    run is bit-identical to :func:`run_mf_experiment` (asserted by the
    test-suite).
    """
    elastic, trainer = make_elastic_mf(
        system,
        num_nodes=num_nodes,
        initial_nodes=initial_nodes,
        schedule=schedule,
        scale=scale,
        workers_per_node=workers_per_node,
        seed=seed,
        cost_model=cost_model,
        durability=durability,
        jobs=jobs,
        trace=trace,
    )
    epoch_results = [
        elastic.run_epoch(trainer, compute_loss=compute_loss) for _ in range(epochs)
    ]
    ps = elastic.ps
    return TaskRunResult(
        task="matrix_factorization",
        system=system,
        num_nodes=num_nodes,
        workers_per_node=workers_per_node,
        epochs=epoch_results,
        metrics=ps.metrics(),
        remote_messages=ps.network.stats.remote_messages,
        bytes_sent=ps.network.stats.bytes_sent,
        jobs=jobs,
        parallel_fallback_reason=ps._last_fallback_reason,
        effective_jobs=ps._last_effective_jobs,
        tracer=ps.tracer,
    )


def run_w2v_experiment(
    system: str,
    num_nodes: int,
    scale: Optional[W2VScale] = None,
    workers_per_node: int = PAPER_WORKERS_PER_NODE,
    epochs: int = 1,
    compute_error: bool = False,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    backend: str = "sim",
    jobs: int = 1,
    trace: Optional[Any] = None,
) -> TaskRunResult:
    """Run skip-gram word-vector training (Figure 8)."""
    if backend != "sim":
        raise ExperimentError(
            "the word2vec task only runs on the simulator (backend='sim'); "
            "the real backend currently supports matrix factorization"
        )
    scale = scale or W2VScale()
    corpus = generate_corpus(
        vocabulary_size=scale.vocabulary_size,
        num_sentences=scale.num_sentences,
        mean_sentence_length=scale.mean_sentence_length,
        skew=scale.word_skew,
        seed=seed,
    )
    w2v_config = Word2VecConfig(
        dim=scale.dim,
        window=scale.window,
        num_negatives=scale.num_negatives,
        compute_time_per_pair=scale.compute_time_per_pair,
        latency_hiding=system not in ("classic", "classic_fast_local"),
        presample_size=scale.presample_size,
        presample_refresh=scale.presample_refresh,
    )
    cluster = _cluster(num_nodes, workers_per_node, seed, cost_model)
    ps_config = ParameterServerConfig(
        num_keys=2 * scale.vocabulary_size, value_length=scale.dim
    )
    ps = make_parameter_server(system, cluster, ps_config, jobs=jobs, trace=trace)
    trainer = Word2VecTrainer(ps, corpus, w2v_config, seed=seed)
    epoch_results = trainer.train(num_epochs=epochs, compute_error=compute_error)
    return TaskRunResult(
        task="word2vec",
        system=system,
        num_nodes=num_nodes,
        workers_per_node=workers_per_node,
        epochs=epoch_results,
        metrics=ps.metrics(),
        remote_messages=ps.network.stats.remote_messages,
        bytes_sent=ps.network.stats.bytes_sent,
        jobs=jobs,
        parallel_fallback_reason=ps._last_fallback_reason,
        effective_jobs=ps._last_effective_jobs,
        tracer=ps.tracer,
    )
