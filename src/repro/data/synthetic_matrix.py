"""Synthetic sparse rating matrices for matrix factorization.

The paper uses two synthetic matrices (10m x 1m and 3.4m x 3m, one billion
revealed entries) generated as in Makari et al. [34]: entries are sampled from
a ground-truth low-rank model plus noise, so that a factorization of the same
rank can fit them well and training loss decreases over epochs.  This module
reproduces that construction at configurable (much smaller) scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import DataGenerationError


@dataclass(frozen=True)
class SyntheticMatrix:
    """A sparse matrix given by coordinate lists plus its generating factors.

    Attributes:
        num_rows: Number of rows (users).
        num_cols: Number of columns (items).
        rows / cols / values: Coordinate representation of the revealed entries.
        true_row_factors / true_col_factors: The ground-truth factors used to
            generate the entries (useful for sanity checks in tests).
    """

    num_rows: int
    num_cols: int
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    true_row_factors: np.ndarray
    true_col_factors: np.ndarray

    @property
    def num_entries(self) -> int:
        """Number of revealed entries."""
        return len(self.values)

    def entries_for_rows(self, row_start: int, row_end: int) -> Tuple[np.ndarray, ...]:
        """Return the (rows, cols, values) of entries whose row is in [row_start, row_end)."""
        mask = (self.rows >= row_start) & (self.rows < row_end)
        return self.rows[mask], self.cols[mask], self.values[mask]

    def entries_for_columns(
        self, col_start: int, col_end: int
    ) -> Tuple[np.ndarray, ...]:
        """Return the (rows, cols, values) of entries whose column is in [col_start, col_end)."""
        mask = (self.cols >= col_start) & (self.cols < col_end)
        return self.rows[mask], self.cols[mask], self.values[mask]


def generate_matrix(
    num_rows: int,
    num_cols: int,
    num_entries: int,
    rank: int = 8,
    noise: float = 0.1,
    seed: int = 0,
) -> SyntheticMatrix:
    """Generate a synthetic sparse matrix from a low-rank ground truth.

    Args:
        num_rows: Number of rows.
        num_cols: Number of columns.
        num_entries: Number of revealed entries to sample (with replacement
            over positions, then deduplicated; the result may contain slightly
            fewer entries).
        rank: Rank of the generating model.
        noise: Standard deviation of Gaussian noise added to each entry.
        seed: Random seed.

    Returns:
        A :class:`SyntheticMatrix`.
    """
    if num_rows < 1 or num_cols < 1:
        raise DataGenerationError("matrix dimensions must be positive")
    if num_entries < 1:
        raise DataGenerationError("num_entries must be positive")
    if rank < 1:
        raise DataGenerationError("rank must be positive")
    if num_entries > num_rows * num_cols:
        raise DataGenerationError(
            f"cannot reveal {num_entries} entries of a {num_rows}x{num_cols} matrix"
        )
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(rank)
    row_factors = rng.normal(0.0, scale, size=(num_rows, rank))
    col_factors = rng.normal(0.0, scale, size=(num_cols, rank))
    rows = rng.integers(0, num_rows, size=num_entries)
    cols = rng.integers(0, num_cols, size=num_entries)
    # Deduplicate positions so each (row, col) appears at most once.
    flat = rows.astype(np.int64) * num_cols + cols.astype(np.int64)
    _, unique_index = np.unique(flat, return_index=True)
    rows = rows[np.sort(unique_index)]
    cols = cols[np.sort(unique_index)]
    values = np.einsum("ij,ij->i", row_factors[rows], col_factors[cols])
    values = values + rng.normal(0.0, noise, size=len(values))
    return SyntheticMatrix(
        num_rows=num_rows,
        num_cols=num_cols,
        rows=rows,
        cols=cols,
        values=values,
        true_row_factors=row_factors,
        true_col_factors=col_factors,
    )
