"""Synthetic text corpora for the word-vector experiments.

The paper trains skip-gram Word2Vec on the One Billion Word benchmark with
stop words removed.  What matters for the PS evaluation is (a) the Zipf word
frequency distribution — which makes a few parameters extremely hot and drives
localization conflicts (§4.3) — and (b) sentence structure, because the
latency-hiding scheme localizes all words of a sentence when the sentence is
read (Appendix A).  This generator produces corpora with both properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import DataGenerationError


@dataclass(frozen=True)
class SyntheticCorpus:
    """A corpus of sentences over an integer vocabulary.

    Attributes:
        vocabulary_size: Number of distinct words (word ids are 0..V-1).
        sentences: List of arrays of word ids.
    """

    vocabulary_size: int
    sentences: List[np.ndarray]

    @property
    def num_sentences(self) -> int:
        """Number of sentences."""
        return len(self.sentences)

    @property
    def num_tokens(self) -> int:
        """Total number of tokens."""
        return int(sum(len(sentence) for sentence in self.sentences))

    def word_frequencies(self) -> np.ndarray:
        """Return the number of occurrences of every word."""
        counts = np.zeros(self.vocabulary_size, dtype=np.int64)
        for sentence in self.sentences:
            np.add.at(counts, sentence, 1)
        return counts

    def unigram_distribution(self, power: float = 0.75) -> np.ndarray:
        """Return the smoothed unigram distribution used for negative sampling."""
        counts = self.word_frequencies().astype(np.float64)
        weights = counts**power
        total = weights.sum()
        if total == 0:
            raise DataGenerationError("corpus is empty")
        return weights / total


def generate_corpus(
    vocabulary_size: int = 2000,
    num_sentences: int = 500,
    mean_sentence_length: int = 12,
    skew: float = 1.0,
    num_topics: int = 8,
    topic_concentration: float = 0.85,
    seed: int = 0,
) -> SyntheticCorpus:
    """Generate a corpus with Zipf-distributed word frequencies and topic structure.

    Sentences are generated from a simple topic model: each sentence draws a
    topic and then, with probability ``topic_concentration``, its words from
    that topic's slice of the vocabulary (Zipf-weighted within the slice) and
    otherwise from the global Zipf distribution.  The topic structure gives the
    corpus real co-occurrence signal — words of the same topic appear together
    — so skip-gram training has something to learn, while the global word
    frequencies stay Zipf-skewed (the property that drives localization
    conflicts in the word-vector experiment).

    Args:
        vocabulary_size: Number of distinct words.
        num_sentences: Number of sentences.
        mean_sentence_length: Mean sentence length (Poisson distributed, >= 2).
        skew: Zipf exponent of the word distribution.
        num_topics: Number of topics (each owns a contiguous vocabulary slice).
        topic_concentration: Probability that a word comes from the sentence's
            topic rather than the global distribution.
        seed: Random seed.
    """
    if vocabulary_size < 2:
        raise DataGenerationError("vocabulary must contain at least two words")
    if num_sentences < 1:
        raise DataGenerationError("need at least one sentence")
    if mean_sentence_length < 2:
        raise DataGenerationError("mean sentence length must be at least 2")
    if skew < 0:
        raise DataGenerationError("skew must be non-negative")
    if num_topics < 1:
        raise DataGenerationError("num_topics must be >= 1")
    if not 0.0 <= topic_concentration <= 1.0:
        raise DataGenerationError("topic_concentration must be in [0, 1]")
    num_topics = min(num_topics, vocabulary_size)
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
    global_probabilities = ranks ** (-skew)
    global_probabilities /= global_probabilities.sum()
    # Decouple word id from frequency rank.
    word_ids = rng.permutation(vocabulary_size)
    # Each topic owns a contiguous slice of the rank space.
    topic_slices = np.array_split(np.arange(vocabulary_size), num_topics)
    topic_probabilities = []
    for topic_ranks in topic_slices:
        weights = global_probabilities[topic_ranks]
        topic_probabilities.append(weights / weights.sum())
    sentences = []
    for _ in range(num_sentences):
        length = max(2, int(rng.poisson(mean_sentence_length)))
        topic = int(rng.integers(0, num_topics))
        from_topic = rng.random(length) < topic_concentration
        ranks_drawn = np.empty(length, dtype=np.int64)
        num_topic_words = int(from_topic.sum())
        if num_topic_words:
            ranks_drawn[from_topic] = rng.choice(
                topic_slices[topic], size=num_topic_words, p=topic_probabilities[topic]
            )
        num_global_words = length - num_topic_words
        if num_global_words:
            ranks_drawn[~from_topic] = rng.choice(
                vocabulary_size, size=num_global_words, p=global_probabilities
            )
        sentences.append(word_ids[ranks_drawn].astype(np.int64))
    return SyntheticCorpus(vocabulary_size=vocabulary_size, sentences=sentences)
