"""Synthetic dataset generators.

The paper evaluates on two ~31 GB synthetic rating matrices, the DBpedia-500k
knowledge graph, and the One Billion Word benchmark.  None of these can be
shipped or processed here, so this package generates scaled-down synthetic
equivalents that preserve the properties the experiments depend on:

* :mod:`repro.data.synthetic_matrix` — sparse rating matrices drawn from a
  low-rank ground-truth model (so matrix factorization actually converges),
* :mod:`repro.data.synthetic_graph` — knowledge graphs with a DBpedia-like
  entity/relation ratio and Zipf-skewed entity usage,
* :mod:`repro.data.synthetic_corpus` — text corpora with Zipf-distributed
  word frequencies (the skew that drives localization conflicts in the
  word-vector experiment),
* :mod:`repro.data.partitioning` — utilities to partition data points over
  workers (by row block, by relation, round-robin).
"""

from repro.data.partitioning import (
    partition_by_key_function,
    partition_contiguous,
    partition_round_robin,
)
from repro.data.synthetic_corpus import SyntheticCorpus, generate_corpus
from repro.data.synthetic_graph import SyntheticKnowledgeGraph, generate_knowledge_graph
from repro.data.synthetic_matrix import SyntheticMatrix, generate_matrix

__all__ = [
    "SyntheticCorpus",
    "SyntheticKnowledgeGraph",
    "SyntheticMatrix",
    "generate_corpus",
    "generate_knowledge_graph",
    "generate_matrix",
    "partition_by_key_function",
    "partition_contiguous",
    "partition_round_robin",
]
