"""Utilities for partitioning training data across workers/nodes."""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from repro.errors import DataGenerationError

T = TypeVar("T")


def partition_round_robin(items: Sequence[T], num_partitions: int) -> List[List[T]]:
    """Deal items round-robin into ``num_partitions`` partitions."""
    if num_partitions < 1:
        raise DataGenerationError("num_partitions must be >= 1")
    partitions: List[List[T]] = [[] for _ in range(num_partitions)]
    for index, item in enumerate(items):
        partitions[index % num_partitions].append(item)
    return partitions


def partition_contiguous(items: Sequence[T], num_partitions: int) -> List[List[T]]:
    """Split items into contiguous, balanced partitions (sizes differ by <= 1)."""
    if num_partitions < 1:
        raise DataGenerationError("num_partitions must be >= 1")
    base = len(items) // num_partitions
    remainder = len(items) % num_partitions
    partitions = []
    start = 0
    for index in range(num_partitions):
        size = base + (1 if index < remainder else 0)
        partitions.append(list(items[start : start + size]))
        start += size
    return partitions


def partition_by_key_function(
    items: Sequence[T], num_partitions: int, key_fn: Callable[[T], int]
) -> List[List[T]]:
    """Assign each item to partition ``key_fn(item) % num_partitions``.

    Used e.g. to partition knowledge-graph triples by relation (the data
    clustering PAL technique in the KGE experiments) or documents by language.
    """
    if num_partitions < 1:
        raise DataGenerationError("num_partitions must be >= 1")
    partitions: List[List[T]] = [[] for _ in range(num_partitions)]
    for item in items:
        partitions[key_fn(item) % num_partitions].append(item)
    return partitions
