"""Synthetic knowledge graphs for the embedding experiments.

The paper trains RESCAL and ComplEx on DBpedia-500k: 490 598 entities,
573 relations, ~3 M triples.  This generator produces graphs with the same
*shape* at configurable scale: many entities, few relations, Zipf-skewed
entity participation (a few entities appear in many triples), and a skewed
relation distribution.  The skew is what produces localization conflicts on
frequently accessed entity embeddings (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import DataGenerationError


@dataclass(frozen=True)
class SyntheticKnowledgeGraph:
    """A set of (subject, relation, object) triples.

    Attributes:
        num_entities: Number of entities.
        num_relations: Number of relations.
        subjects / relations / objects: Parallel arrays, one entry per triple.
    """

    num_entities: int
    num_relations: int
    subjects: np.ndarray
    relations: np.ndarray
    objects: np.ndarray

    @property
    def num_triples(self) -> int:
        """Number of triples."""
        return len(self.relations)

    def triples(self) -> np.ndarray:
        """Return the triples as an array of shape (num_triples, 3)."""
        return np.column_stack([self.subjects, self.relations, self.objects])

    def triples_of_relation(self, relation: int) -> np.ndarray:
        """Return the triples that use ``relation``."""
        mask = self.relations == relation
        return np.column_stack([self.subjects[mask], self.relations[mask], self.objects[mask]])

    def entity_frequencies(self) -> np.ndarray:
        """Return how many triples each entity participates in (as subject or object)."""
        counts = np.zeros(self.num_entities, dtype=np.int64)
        np.add.at(counts, self.subjects, 1)
        np.add.at(counts, self.objects, 1)
        return counts


def _zipf_probabilities(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_knowledge_graph(
    num_entities: int = 1000,
    num_relations: int = 16,
    num_triples: int = 10_000,
    entity_skew: float = 0.8,
    relation_skew: float = 1.0,
    seed: int = 0,
) -> SyntheticKnowledgeGraph:
    """Generate a synthetic knowledge graph with Zipf-skewed usage.

    Args:
        num_entities: Number of entities (DBpedia-500k: ~490k).
        num_relations: Number of relations (DBpedia-500k: 573).
        num_triples: Number of triples (DBpedia-500k: ~3M).
        entity_skew: Zipf exponent of entity participation (0 = uniform).
        relation_skew: Zipf exponent of relation usage.
        seed: Random seed.
    """
    if num_entities < 2:
        raise DataGenerationError("need at least two entities")
    if num_relations < 1:
        raise DataGenerationError("need at least one relation")
    if num_triples < 1:
        raise DataGenerationError("need at least one triple")
    if entity_skew < 0 or relation_skew < 0:
        raise DataGenerationError("skew exponents must be non-negative")
    rng = np.random.default_rng(seed)
    entity_probs = _zipf_probabilities(num_entities, entity_skew)
    relation_probs = _zipf_probabilities(num_relations, relation_skew)
    # Shuffle which entity/relation ids are the frequent ones so that frequency
    # is not correlated with key order.
    entity_ids = rng.permutation(num_entities)
    relation_ids = rng.permutation(num_relations)
    subjects = entity_ids[rng.choice(num_entities, size=num_triples, p=entity_probs)]
    objects = entity_ids[rng.choice(num_entities, size=num_triples, p=entity_probs)]
    # Avoid self-loops where possible (shift the object by one entity).
    self_loops = subjects == objects
    objects = np.where(self_loops, (objects + 1) % num_entities, objects)
    relations = relation_ids[rng.choice(num_relations, size=num_triples, p=relation_probs)]
    return SyntheticKnowledgeGraph(
        num_entities=num_entities,
        num_relations=num_relations,
        subjects=subjects.astype(np.int64),
        relations=relations.astype(np.int64),
        objects=objects.astype(np.int64),
    )
