"""Optimizer helpers: AdaGrad state packed into PS values.

The KGE experiments of the paper run SGD with AdaGrad and store the AdaGrad
metadata *in* the parameter server (Appendix A).  We reproduce this by packing
``[parameter | accumulated squared gradients]`` into each PS value vector:
a key with model dimension ``d`` uses a PS value of length ``2 d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ExperimentError


@dataclass(frozen=True)
class AdaGradPacking:
    """Describes how model values and AdaGrad accumulators share a PS value."""

    model_dim: int

    def __post_init__(self) -> None:
        if self.model_dim < 1:
            raise ExperimentError(f"model_dim must be >= 1, got {self.model_dim}")

    @property
    def value_length(self) -> int:
        """Length of the packed PS value (parameter + accumulator)."""
        return 2 * self.model_dim

    def unpack(self, packed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split a packed PS value into (parameter, accumulator)."""
        packed = np.asarray(packed)
        if packed.shape[-1] != self.value_length:
            raise ExperimentError(
                f"packed value has length {packed.shape[-1]}, expected {self.value_length}"
            )
        return packed[..., : self.model_dim], packed[..., self.model_dim :]

    def pack(self, parameter: np.ndarray, accumulator: np.ndarray) -> np.ndarray:
        """Concatenate (parameter, accumulator) into a packed PS value."""
        parameter = np.asarray(parameter, dtype=np.float64)
        accumulator = np.asarray(accumulator, dtype=np.float64)
        if parameter.shape != accumulator.shape or parameter.shape[-1] != self.model_dim:
            raise ExperimentError("parameter and accumulator shapes do not match the packing")
        return np.concatenate([parameter, accumulator], axis=-1)


def adagrad_update(
    packing: AdaGradPacking,
    packed_value: np.ndarray,
    gradient: np.ndarray,
    learning_rate: float,
    epsilon: float = 1e-8,
) -> np.ndarray:
    """Compute the *cumulative PS update* for one AdaGrad step.

    Given the currently pulled packed value and a gradient, returns the delta
    to ``push`` so that the stored value becomes the post-step packed value:
    the parameter moves by ``-lr * g / sqrt(acc + g^2)`` and the accumulator
    grows by ``g^2``.
    """
    if learning_rate <= 0:
        raise ExperimentError(f"learning_rate must be positive, got {learning_rate}")
    parameter, accumulator = packing.unpack(np.asarray(packed_value, dtype=np.float64))
    gradient = np.asarray(gradient, dtype=np.float64)
    if gradient.shape != parameter.shape:
        raise ExperimentError(
            f"gradient shape {gradient.shape} does not match parameter shape {parameter.shape}"
        )
    squared = gradient * gradient
    new_accumulator = accumulator + squared
    step = -learning_rate * gradient / np.sqrt(new_accumulator + epsilon)
    return np.concatenate([step, squared], axis=-1)


def sgd_update(gradient: np.ndarray, learning_rate: float) -> np.ndarray:
    """Plain SGD cumulative update: ``-lr * gradient``."""
    if learning_rate <= 0:
        raise ExperimentError(f"learning_rate must be positive, got {learning_rate}")
    return -learning_rate * np.asarray(gradient, dtype=np.float64)
