"""Distributed ML tasks implemented against the parameter-server client API.

The three tasks of the paper's evaluation (Table 4), each written once against
the generic ``pull`` / ``push`` / ``localize`` / ``clock`` API so that the same
algorithm runs on the classic PS, the stale PS, and Lapse:

* :mod:`repro.ml.matrix_factorization` — DSGD low-rank matrix factorization
  with the parameter-blocking PAL technique,
* :mod:`repro.ml.kge` — knowledge-graph embeddings (RESCAL and ComplEx) with
  AdaGrad, negative sampling, data clustering for relation parameters and
  latency hiding (prelocalization) for entity parameters,
* :mod:`repro.ml.word2vec` — skip-gram word vectors with negative sampling and
  latency hiding.
"""

from repro.ml.kge import KGEConfig, KGETrainer
from repro.ml.matrix_factorization import MatrixFactorizationConfig, MatrixFactorizationTrainer
from repro.ml.metrics import log_loss, rmse, sigmoid
from repro.ml.optim import AdaGradPacking, adagrad_update
from repro.ml.results import EpochResult
from repro.ml.word2vec import Word2VecConfig, Word2VecTrainer

__all__ = [
    "AdaGradPacking",
    "EpochResult",
    "KGEConfig",
    "KGETrainer",
    "MatrixFactorizationConfig",
    "MatrixFactorizationTrainer",
    "Word2VecConfig",
    "Word2VecTrainer",
    "adagrad_update",
    "log_loss",
    "rmse",
    "sigmoid",
]
