"""Knowledge-graph embeddings (RESCAL and ComplEx) on a parameter server.

The KGE task of §4 / Figures 1 and 7: learn embeddings for the entities and
relations of a knowledge graph with SGD + AdaGrad and negative sampling.  Two
models are supported:

* **RESCAL** — entity vectors of dimension ``d`` and a ``d x d`` relation
  matrix per relation (so relation parameters are ``d`` times larger than
  entity parameters, which is why the "only data clustering" variant helps
  RESCAL more than ComplEx, §4.3),
* **ComplEx** — complex-valued entity and relation vectors of dimension ``d``
  (stored as ``2 d`` reals).

Parameter-server layout: one key per entity; each relation occupies
``keys_per_relation`` consecutive keys of the same value length as an entity
key (one key per matrix row for RESCAL, one key for ComplEx).  AdaGrad
accumulators are stored in the PS alongside the values (Appendix A), so a key
with model dimension ``m`` has PS value length ``2 m``.

PAL techniques (Appendix A): *data clustering* partitions the triples by
relation so every relation parameter is accessed by exactly one node and can
be localized there once; *latency hiding* prelocalizes the entity parameters
of the next triple (including its negative samples) while the current triple
is being processed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import derive_seed
from repro.data.synthetic_graph import SyntheticKnowledgeGraph
from repro.errors import ExperimentError
from repro.ml.common import maybe_localize, needs_clock, supports_localize
from repro.ml.metrics import log_loss, sigmoid
from repro.ml.optim import AdaGradPacking, adagrad_update
from repro.ml.results import EpochResult
from repro.pal.latency_hiding import Prelocalizer
from repro.ps.base import ParameterServer


@dataclass(frozen=True)
class KGEConfig:
    """Hyper-parameters and PAL switches for the KGE task.

    Attributes:
        model: ``"rescal"`` or ``"complex"``.
        entity_dim: Embedding dimension ``d``.
        num_negatives: Negative samples per triple *per slot* (subject and
            object are each perturbed this many times, as in the paper).
        learning_rate: Initial AdaGrad learning rate (paper: 0.1).
        compute_time_per_triple: Simulated computation time per triple.
        data_clustering: Partition triples by relation and localize relation
            parameters (PAL technique 1).
        latency_hiding: Prelocalize entity parameters of the upcoming triple
            (PAL technique 2).
        init_scale: Standard deviation of the embedding initialization.
    """

    model: str = "complex"
    entity_dim: int = 4
    num_negatives: int = 2
    learning_rate: float = 0.1
    compute_time_per_triple: float = 20e-6
    data_clustering: bool = True
    latency_hiding: bool = True
    init_scale: float = 0.1

    def __post_init__(self) -> None:
        if self.model not in ("rescal", "complex"):
            raise ExperimentError(f"unknown KGE model {self.model!r}")
        if self.entity_dim < 1:
            raise ExperimentError("entity_dim must be >= 1")
        if self.num_negatives < 1:
            raise ExperimentError("num_negatives must be >= 1")
        if self.learning_rate <= 0:
            raise ExperimentError("learning_rate must be positive")
        if self.compute_time_per_triple < 0:
            raise ExperimentError("compute_time_per_triple must be non-negative")

    @property
    def base_dim(self) -> int:
        """Per-key model dimension (``d`` for RESCAL, ``2 d`` for ComplEx)."""
        return self.entity_dim if self.model == "rescal" else 2 * self.entity_dim

    @property
    def keys_per_relation(self) -> int:
        """PS keys occupied by one relation parameter."""
        return self.entity_dim if self.model == "rescal" else 1

    @property
    def value_length(self) -> int:
        """Required PS value length (model value + AdaGrad accumulator)."""
        return 2 * self.base_dim


class KGEKeySpace:
    """Maps entities and relations of a graph to PS keys."""

    def __init__(self, graph: SyntheticKnowledgeGraph, config: KGEConfig) -> None:
        self.graph = graph
        self.config = config
        self.num_entities = graph.num_entities
        self.num_relations = graph.num_relations

    @property
    def num_keys(self) -> int:
        """Total number of PS keys required."""
        return self.num_entities + self.num_relations * self.config.keys_per_relation

    def entity_key(self, entity: int) -> int:
        """PS key of an entity embedding."""
        if not 0 <= entity < self.num_entities:
            raise ExperimentError(f"entity {entity} out of range")
        return entity

    def relation_keys(self, relation: int) -> List[int]:
        """PS keys of a relation parameter (one or ``d`` consecutive keys)."""
        if not 0 <= relation < self.num_relations:
            raise ExperimentError(f"relation {relation} out of range")
        start = self.num_entities + relation * self.config.keys_per_relation
        return list(range(start, start + self.config.keys_per_relation))


class KGETrainer:
    """Trains RESCAL/ComplEx embeddings on any of the PS variants."""

    def __init__(
        self,
        ps: ParameterServer,
        graph: SyntheticKnowledgeGraph,
        config: Optional[KGEConfig] = None,
        seed: int = 0,
    ) -> None:
        self.ps = ps
        self.graph = graph
        self.config = config or KGEConfig()
        self.keyspace = KGEKeySpace(graph, self.config)
        self.packing = AdaGradPacking(self.config.base_dim)
        self.seed = seed
        if ps.ps_config.num_keys != self.keyspace.num_keys:
            raise ExperimentError(
                f"the PS must have {self.keyspace.num_keys} keys, got {ps.ps_config.num_keys}"
            )
        if ps.ps_config.value_length != self.config.value_length:
            raise ExperimentError(
                f"the PS value length must be {self.config.value_length}, "
                f"got {ps.ps_config.value_length}"
            )
        self._epochs_run = 0
        self._partition_triples()
        self._initialize_embeddings()

    # ------------------------------------------------------------ preparation
    def _partition_triples(self) -> None:
        """Assign triples to workers (by relation if data clustering is on)."""
        num_nodes = self.ps.cluster.num_nodes
        workers_per_node = self.ps.cluster.workers_per_node
        total_workers = self.ps.cluster.total_workers
        triples = self.graph.triples()
        self._worker_triples: Dict[int, np.ndarray] = {}
        self._node_relations: Dict[int, List[int]] = {node: [] for node in range(num_nodes)}
        if self.config.data_clustering:
            for relation in range(self.graph.num_relations):
                self._node_relations[relation % num_nodes].append(relation)
            node_of_triple = triples[:, 1] % num_nodes
            for node in range(num_nodes):
                node_triples = triples[node_of_triple == node]
                for local_worker in range(workers_per_node):
                    worker_id = node * workers_per_node + local_worker
                    self._worker_triples[worker_id] = node_triples[local_worker::workers_per_node]
        else:
            for relation in range(self.graph.num_relations):
                self._node_relations[relation % num_nodes].append(relation)
            for worker_id in range(total_workers):
                self._worker_triples[worker_id] = triples[worker_id::total_workers]

    def _initialize_embeddings(self) -> None:
        rng = np.random.default_rng(derive_seed(self.seed, 202))
        scale = self.config.init_scale
        base_dim = self.config.base_dim
        for key in range(self.keyspace.num_keys):
            value = rng.normal(0.0, scale, size=base_dim)
            packed = self.packing.pack(value, np.zeros(base_dim))
            owner = self.ps.current_owner(key)
            self.ps.states[owner].storage.set(key, packed)

    # ---------------------------------------------------------------- scoring
    def _score_and_grads(
        self,
        subject_vec: np.ndarray,
        relation_rows: np.ndarray,
        object_vec: np.ndarray,
    ) -> Tuple[float, np.ndarray, np.ndarray, np.ndarray]:
        """Return (score, grad_subject, grad_relation_rows, grad_object)."""
        if self.config.model == "rescal":
            relation_matrix = relation_rows  # (d, d)
            score = float(subject_vec @ relation_matrix @ object_vec)
            grad_subject = relation_matrix @ object_vec
            grad_object = relation_matrix.T @ subject_vec
            grad_relation = np.outer(subject_vec, object_vec)
            return score, grad_subject, grad_relation, grad_object
        # ComplEx: vectors are [real | imaginary] halves of length d.
        d = self.config.entity_dim
        relation_vec = relation_rows[0]
        re_s, im_s = subject_vec[:d], subject_vec[d:]
        re_r, im_r = relation_vec[:d], relation_vec[d:]
        re_o, im_o = object_vec[:d], object_vec[d:]
        score = float(
            np.sum(re_r * (re_s * re_o + im_s * im_o) + im_r * (re_s * im_o - im_s * re_o))
        )
        grad_subject = np.concatenate(
            [re_r * re_o + im_r * im_o, re_r * im_o - im_r * re_o]
        )
        grad_object = np.concatenate(
            [re_r * re_s - im_r * im_s, re_r * im_s + im_r * re_s]
        )
        grad_relation = np.concatenate(
            [re_s * re_o + im_s * im_o, re_s * im_o - im_s * re_o]
        ).reshape(1, -1)
        return score, grad_subject, grad_relation, grad_object

    # -------------------------------------------------------------- training
    def train(self, num_epochs: int = 1, compute_loss: bool = True) -> List[EpochResult]:
        """Run ``num_epochs`` training epochs."""
        if num_epochs < 1:
            raise ExperimentError("num_epochs must be >= 1")
        return [self.run_epoch(compute_loss=compute_loss) for _ in range(num_epochs)]

    def run_epoch(self, compute_loss: bool = True) -> EpochResult:
        """Run one epoch over all triples."""
        epoch = self._epochs_run
        start_time = self.ps.simulated_time
        self.ps.run_workers(self._worker_epoch)
        duration = self.ps.simulated_time - start_time
        self._epochs_run += 1
        loss = self.evaluation_loss() if compute_loss else None
        return EpochResult(epoch=epoch, duration=duration, end_time=self.ps.simulated_time, loss=loss)

    def _triple_entity_keys(self, triple: np.ndarray, negatives: np.ndarray) -> List[int]:
        entities = {int(triple[0]), int(triple[2])}
        entities.update(int(e) for e in negatives)
        return [self.keyspace.entity_key(e) for e in sorted(entities)]

    def _worker_epoch(self, client, worker_id: int) -> Generator:
        config = self.config
        triples = self._worker_triples.get(worker_id)
        rng = np.random.default_rng(derive_seed(self.seed, worker_id, self._epochs_run + 1))
        # Data clustering: localize this node's relation parameters once.
        if config.data_clustering and supports_localize(self.ps) and client.local_worker_id == 0:
            relation_keys: List[int] = []
            for relation in self._node_relations[client.node_id]:
                relation_keys.extend(self.keyspace.relation_keys(relation))
            yield from maybe_localize(client, relation_keys)
        yield from client.barrier()
        if triples is not None and len(triples) > 0:
            # Pre-draw negative entities for every triple of this epoch.
            negatives = rng.integers(
                0, self.graph.num_entities, size=(len(triples), 2 * config.num_negatives)
            )
            # Per-epoch key schedule, precomputed once: the entity-key list of
            # every triple was previously recomputed twice per step (once for
            # the latency-hiding announcement, once for processing).
            entity_keys = [
                self._triple_entity_keys(triples[index], negatives[index])
                for index in range(len(triples))
            ]
            use_latency_hiding = config.latency_hiding and supports_localize(self.ps)
            prelocalizer = Prelocalizer(client) if use_latency_hiding else None
            if prelocalizer is not None:
                prelocalizer.prime(entity_keys[0])
            for index in range(len(triples)):
                if prelocalizer is not None and index + 1 < len(triples):
                    prelocalizer.announce(entity_keys[index + 1])
                if prelocalizer is not None:
                    yield from prelocalizer.ready()
                yield from self._process_triple(
                    client, triples[index], negatives[index], entity_keys[index]
                )
                if config.compute_time_per_triple > 0:
                    yield config.compute_time_per_triple
        yield from client.barrier()
        if needs_clock(self.ps):
            yield from client.clock()
        return None

    def _process_triple(
        self,
        client,
        triple: np.ndarray,
        negatives: np.ndarray,
        entity_keys: Optional[List[int]] = None,
    ) -> Generator:
        config = self.config
        subject, relation, obj = int(triple[0]), int(triple[1]), int(triple[2])
        if entity_keys is None:
            entity_keys = self._triple_entity_keys(triple, negatives)
        relation_keys = self.keyspace.relation_keys(relation)
        all_keys = entity_keys + relation_keys
        pulled = yield from client.pull(all_keys)
        packed: Dict[int, np.ndarray] = {key: pulled[i] for i, key in enumerate(all_keys)}
        values: Dict[int, np.ndarray] = {}
        for key in all_keys:
            value, _ = self.packing.unpack(packed[key])
            values[key] = value
        relation_rows = np.vstack([values[key] for key in relation_keys])
        gradients: Dict[int, np.ndarray] = {key: np.zeros(config.base_dim) for key in all_keys}
        relation_grad = np.zeros_like(relation_rows)

        def accumulate(s_ent: int, o_ent: int, label: float) -> None:
            nonlocal relation_grad
            s_key = self.keyspace.entity_key(s_ent)
            o_key = self.keyspace.entity_key(o_ent)
            score, grad_s, grad_r, grad_o = self._score_and_grads(
                values[s_key], relation_rows, values[o_key]
            )
            coefficient = float(sigmoid(np.array([score]))[0] - label)
            gradients[s_key] += coefficient * grad_s
            gradients[o_key] += coefficient * grad_o
            relation_grad = relation_grad + coefficient * grad_r

        accumulate(subject, obj, label=1.0)
        half = config.num_negatives
        for negative in negatives[:half]:
            accumulate(int(negative), obj, label=0.0)
        for negative in negatives[half:]:
            accumulate(subject, int(negative), label=0.0)
        for row_index, key in enumerate(relation_keys):
            gradients[key] += relation_grad[row_index]
        updates = np.vstack(
            [
                adagrad_update(self.packing, packed[key], gradients[key], config.learning_rate)
                for key in all_keys
            ]
        )
        client.push_async(all_keys, updates, needs_ack=False)
        return None

    # ------------------------------------------------------------- evaluation
    def _gather_values(self) -> np.ndarray:
        packed = self.ps.all_parameters()
        values, _ = self.packing.unpack(packed)
        return values

    def evaluation_loss(self, num_samples: int = 200, seed: int = 7) -> float:
        """Mean log loss of positive triples vs. random negatives."""
        rng = np.random.default_rng(seed)
        values = self._gather_values()
        count = min(num_samples, self.graph.num_triples)
        indices = rng.choice(self.graph.num_triples, size=count, replace=False)
        scores, labels = [], []
        for index in indices:
            subject = int(self.graph.subjects[index])
            relation = int(self.graph.relations[index])
            obj = int(self.graph.objects[index])
            relation_rows = np.vstack(
                [values[key] for key in self.keyspace.relation_keys(relation)]
            )
            score, _, _, _ = self._score_and_grads(
                values[self.keyspace.entity_key(subject)],
                relation_rows,
                values[self.keyspace.entity_key(obj)],
            )
            scores.append(score)
            labels.append(1.0)
            negative = int(rng.integers(0, self.graph.num_entities))
            score, _, _, _ = self._score_and_grads(
                values[self.keyspace.entity_key(subject)],
                relation_rows,
                values[self.keyspace.entity_key(negative)],
            )
            scores.append(score)
            labels.append(0.0)
        return log_loss(np.array(scores), np.array(labels))
