"""Common result records for training runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EpochResult:
    """Outcome of one training epoch on a simulated cluster.

    Attributes:
        epoch: Epoch index (0-based).
        duration: Simulated epoch run time in seconds (the quantity the
            paper's run-time figures report).
        end_time: Simulated time at which the epoch finished (cumulative).
        loss: Task-specific loss/error metric evaluated after the epoch.
    """

    epoch: int
    duration: float
    end_time: float
    loss: Optional[float] = None
