"""Loss and evaluation metrics shared by the ML tasks."""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def log_loss(scores: np.ndarray, labels: np.ndarray, epsilon: float = 1e-12) -> float:
    """Mean binary cross-entropy of logits ``scores`` against 0/1 ``labels``."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.shape != labels.shape:
        raise ExperimentError("scores and labels must have the same shape")
    if scores.size == 0:
        raise ExperimentError("log_loss requires at least one score")
    probabilities = np.clip(sigmoid(scores), epsilon, 1.0 - epsilon)
    return float(
        -np.mean(labels * np.log(probabilities) + (1.0 - labels) * np.log(1.0 - probabilities))
    )


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Root-mean-square error."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ExperimentError("predictions and targets must have the same shape")
    if predictions.size == 0:
        raise ExperimentError("rmse requires at least one prediction")
    return float(np.sqrt(np.mean((predictions - targets) ** 2)))
