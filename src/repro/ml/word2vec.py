"""Skip-gram Word2Vec with negative sampling on a parameter server.

The word-vector task of §4 / Figure 8: learn an input ("word") and output
("context") vector for every vocabulary word with skip-gram negative sampling.

Parameter-server layout: input vector of word ``w`` is key ``w``, output
vector is key ``V + w`` (plain SGD, no optimizer state in the PS).

PAL technique (Appendix A): latency hiding.  When a worker reads a new
sentence it prelocalizes the parameters of all words of the *next* sentence;
negative samples are drawn from a pre-sampled pool whose parameters were
localized in advance, and candidates that are currently not local (e.g.
because of a localization conflict on a hot word) are skipped and re-sampled,
which slightly changes the negative-sampling distribution — exactly the
trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import derive_seed
from repro.data.synthetic_corpus import SyntheticCorpus
from repro.errors import ExperimentError
from repro.ml.common import needs_clock, supports_localize
from repro.ml.metrics import sigmoid
from repro.ml.results import EpochResult
from repro.pal.latency_hiding import Prelocalizer
from repro.ps.base import ParameterServer


@dataclass(frozen=True)
class Word2VecConfig:
    """Hyper-parameters and PAL switches for the word-vector task.

    Attributes:
        dim: Embedding dimension (paper: 1000; scaled down here).
        window: Skip-gram window size (paper: 5).
        num_negatives: Negative samples per (center, context) pair (paper: 25).
        learning_rate: SGD step size.
        compute_time_per_pair: Simulated computation time per skip-gram pair.
        latency_hiding: Prelocalize sentence words and negative-sample pools.
        presample_size: Size of the pre-sampled negative pool (paper: 4000).
        presample_refresh: Remaining-candidate threshold at which a new pool is
            sampled (paper: refresh at the 3900th of 4000).
        subsample_threshold: Frequent-word subsampling threshold ``t`` (the
            paper uses 1e-5 on the billion-word corpus); occurrences of a word
            with relative frequency ``f`` are kept with probability
            ``sqrt(t / f) + t / f``.  Set to 0 to disable.
        init_scale: Standard deviation of the embedding initialization.
    """

    dim: int = 8
    window: int = 2
    num_negatives: int = 3
    learning_rate: float = 0.05
    compute_time_per_pair: float = 5e-6
    latency_hiding: bool = True
    presample_size: int = 64
    presample_refresh: int = 8
    subsample_threshold: float = 1e-3
    init_scale: float = 0.1

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ExperimentError("dim must be >= 1")
        if self.window < 1:
            raise ExperimentError("window must be >= 1")
        if self.num_negatives < 1:
            raise ExperimentError("num_negatives must be >= 1")
        if self.learning_rate <= 0:
            raise ExperimentError("learning_rate must be positive")
        if self.presample_size < self.num_negatives:
            raise ExperimentError("presample_size must be at least num_negatives")
        if not 0 < self.presample_refresh <= self.presample_size:
            raise ExperimentError("presample_refresh must be in (0, presample_size]")
        if self.subsample_threshold < 0:
            raise ExperimentError("subsample_threshold must be non-negative")


class Word2VecTrainer:
    """Trains skip-gram word vectors on any of the PS variants."""

    def __init__(
        self,
        ps: ParameterServer,
        corpus: SyntheticCorpus,
        config: Optional[Word2VecConfig] = None,
        seed: int = 0,
    ) -> None:
        self.ps = ps
        self.corpus = corpus
        self.config = config or Word2VecConfig()
        self.seed = seed
        self.vocabulary_size = corpus.vocabulary_size
        expected_keys = 2 * self.vocabulary_size
        if ps.ps_config.num_keys != expected_keys:
            raise ExperimentError(
                f"the PS must have {expected_keys} keys (input + output vectors), "
                f"got {ps.ps_config.num_keys}"
            )
        if ps.ps_config.value_length != self.config.dim:
            raise ExperimentError(
                f"the PS value length must equal dim ({self.config.dim}), "
                f"got {ps.ps_config.value_length}"
            )
        self._epochs_run = 0
        self._unigram = corpus.unigram_distribution()
        self._keep_probability = self._compute_keep_probabilities()
        self._partition_sentences()
        self._initialize_embeddings()
        #: Count of negative-sample candidates skipped because they were not
        #: local (localization conflicts), summed over all workers.
        self.skipped_negatives = 0

    # ------------------------------------------------------------ preparation
    def _partition_sentences(self) -> None:
        total_workers = self.ps.cluster.total_workers
        self._worker_sentences: Dict[int, List[np.ndarray]] = {
            worker: self.corpus.sentences[worker::total_workers]
            for worker in range(total_workers)
        }

    def _initialize_embeddings(self) -> None:
        rng = np.random.default_rng(derive_seed(self.seed, 303))
        for key in range(2 * self.vocabulary_size):
            value = rng.normal(0.0, self.config.init_scale, size=self.config.dim)
            owner = self.ps.current_owner(key)
            self.ps.states[owner].storage.set(key, value)

    def _compute_keep_probabilities(self) -> np.ndarray:
        """Frequent-word subsampling probabilities (Mikolov et al.)."""
        threshold = self.config.subsample_threshold
        if threshold <= 0:
            return np.ones(self.vocabulary_size)
        counts = self.corpus.word_frequencies().astype(np.float64)
        total = max(1.0, counts.sum())
        frequency = np.maximum(counts / total, 1e-12)
        keep = np.sqrt(threshold / frequency) + threshold / frequency
        return np.minimum(keep, 1.0)

    def _subsample(self, sentence: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Drop occurrences of frequent words from a sentence."""
        if self.config.subsample_threshold <= 0:
            return sentence
        keep = rng.random(len(sentence)) < self._keep_probability[sentence]
        filtered = sentence[keep]
        return filtered if len(filtered) >= 2 else sentence

    # ------------------------------------------------------------ key mapping
    def input_key(self, word: int) -> int:
        """PS key of the input (word) vector."""
        return word

    def output_key(self, word: int) -> int:
        """PS key of the output (context) vector."""
        return self.vocabulary_size + word

    def _sentence_keys(self, sentence: np.ndarray) -> List[int]:
        words = np.unique(sentence)
        return [self.input_key(int(w)) for w in words] + [
            self.output_key(int(w)) for w in words
        ]

    # -------------------------------------------------------------- training
    def train(self, num_epochs: int = 1, compute_error: bool = True) -> List[EpochResult]:
        """Run ``num_epochs`` training epochs."""
        if num_epochs < 1:
            raise ExperimentError("num_epochs must be >= 1")
        return [self.run_epoch(compute_error=compute_error) for _ in range(num_epochs)]

    def run_epoch(self, compute_error: bool = True) -> EpochResult:
        """Run one epoch over all sentences."""
        epoch = self._epochs_run
        start_time = self.ps.simulated_time
        self.skipped_negatives += sum(self.ps.run_workers(self._worker_epoch))
        duration = self.ps.simulated_time - start_time
        self._epochs_run += 1
        error = self.evaluation_error() if compute_error else None
        return EpochResult(epoch=epoch, duration=duration, end_time=self.ps.simulated_time, loss=error)

    def _worker_epoch(self, client, worker_id: int) -> Generator:
        config = self.config
        sentences = self._worker_sentences.get(worker_id, [])
        rng = np.random.default_rng(derive_seed(self.seed, worker_id, self._epochs_run + 7))
        use_latency_hiding = config.latency_hiding and supports_localize(self.ps)
        negative_pool: List[int] = []
        pool_position = 0
        # Counted locally and returned: under the parallel engine the worker
        # runs in a forked shard process, so trainer attributes mutated here
        # would be lost — run_epoch accumulates the returned counts instead.
        skipped_negatives = 0

        def refill_pool() -> List[int]:
            pool = rng.choice(
                self.vocabulary_size, size=config.presample_size, p=self._unigram
            ).tolist()
            if use_latency_hiding:
                client.localize_async([self.output_key(w) for w in set(pool)])
            return pool

        negative_pool = refill_pool()
        # Frequent-word subsampling happens before pairs are formed, exactly as
        # in the reference Word2Vec implementation.
        sentences = [self._subsample(sentence, rng) for sentence in sentences]
        prelocalizer = Prelocalizer(client) if use_latency_hiding else None
        # Per-epoch key schedule: every sentence's key list was previously
        # computed twice (prime/announce plus processing order).
        sentence_keys = (
            [self._sentence_keys(sentence) for sentence in sentences]
            if prelocalizer is not None
            else None
        )
        if prelocalizer is not None and sentences:
            prelocalizer.prime(sentence_keys[0])
        for sentence_index, sentence in enumerate(sentences):
            if prelocalizer is not None and sentence_index + 1 < len(sentences):
                prelocalizer.announce(sentence_keys[sentence_index + 1])
            if prelocalizer is not None:
                yield from prelocalizer.ready()
            for center_position, center in enumerate(sentence):
                lo = max(0, center_position - config.window)
                hi = min(len(sentence), center_position + config.window + 1)
                for context_position in range(lo, hi):
                    if context_position == center_position:
                        continue
                    # Refresh the negative pool once presample_refresh
                    # candidates have been consumed (paper: a new list of 4000
                    # is sampled when the 3900th sample is reached).
                    if pool_position + config.num_negatives > config.presample_refresh:
                        negative_pool = refill_pool()
                        pool_position = 0
                    negatives = []
                    while len(negatives) < config.num_negatives and pool_position < len(
                        negative_pool
                    ):
                        candidate = negative_pool[pool_position]
                        pool_position += 1
                        if use_latency_hiding:
                            # Only use negatives whose parameters are local
                            # (skip localization conflicts, Appendix A).
                            if client.state.storage.contains(self.output_key(candidate)):
                                negatives.append(candidate)
                            else:
                                skipped_negatives += 1
                        else:
                            negatives.append(candidate)
                    yield from self._train_pair(
                        client, int(center), int(sentence[context_position]), negatives
                    )
                    if config.compute_time_per_pair > 0:
                        yield config.compute_time_per_pair
        yield from client.barrier()
        if needs_clock(self.ps):
            yield from client.clock()
        return skipped_negatives

    def _train_pair(
        self, client, center: int, context: int, negatives: Sequence[int]
    ) -> Generator:
        config = self.config
        keys = [self.input_key(center), self.output_key(context)] + [
            self.output_key(n) for n in negatives
        ]
        pulled = yield from client.pull(keys)
        center_vec = pulled[0]
        grad_center = np.zeros(config.dim)
        updates = np.zeros((len(keys), config.dim))
        targets = [1.0] + [0.0] * len(negatives)
        for slot, label in enumerate(targets):
            output_vec = pulled[1 + slot]
            score = float(center_vec @ output_vec)
            coefficient = float(sigmoid(np.array([score]))[0] - label)
            grad_center += coefficient * output_vec
            updates[1 + slot] = -config.learning_rate * coefficient * center_vec
        updates[0] = -config.learning_rate * grad_center
        client.push_async(keys, updates, needs_ack=False)
        return None

    # ------------------------------------------------------------- evaluation
    def embeddings(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (input vectors, output vectors) gathered from the PS."""
        all_values = self.ps.all_parameters()
        return all_values[: self.vocabulary_size], all_values[self.vocabulary_size :]

    def evaluation_error(self, num_pairs: int = 300, seed: int = 11) -> float:
        """Error in percent on a ranking task over held-out co-occurrence pairs.

        The paper measures error on a word-analogy benchmark, which requires
        natural-language data.  On synthetic corpora we substitute a ranking
        error with the same behaviour (decreases as the embeddings improve):
        for sampled true (center, context) pairs the positive context should
        score higher than a randomly drawn word; the error is the percentage
        of pairs where it does not.
        """
        rng = np.random.default_rng(seed)
        inputs, outputs = self.embeddings()
        mistakes = 0
        total = 0
        for _ in range(num_pairs):
            sentence = self.corpus.sentences[rng.integers(0, self.corpus.num_sentences)]
            if len(sentence) < 2:
                continue
            position = int(rng.integers(0, len(sentence) - 1))
            center = int(sentence[position])
            context = int(sentence[position + 1])
            random_word = int(rng.integers(0, self.vocabulary_size))
            positive_score = float(inputs[center] @ outputs[context])
            negative_score = float(inputs[center] @ outputs[random_word])
            if positive_score <= negative_score:
                mistakes += 1
            total += 1
        if total == 0:
            raise ExperimentError("corpus too small to evaluate")
        return 100.0 * mistakes / total
