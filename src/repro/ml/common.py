"""Helpers shared by the ML task trainers."""

from __future__ import annotations

from typing import Generator

from repro.ps.base import ParameterServer
from repro.ps.replica import ReplicaPS
from repro.ps.stale import StalePS


def supports_localize(ps: ParameterServer) -> bool:
    """Whether the PS supports ``localize`` (relocation-capable policies)."""
    return ps.management_policy.supports_localize


def needs_clock(ps: ParameterServer) -> bool:
    """Whether the PS requires explicit clock advances for synchronization."""
    if isinstance(ps, StalePS):
        return True
    return isinstance(ps, ReplicaPS) and ps.ps_config.replica_sync_trigger == "clock"


def maybe_localize(client, keys) -> Generator:
    """Localize ``keys`` if the PS supports it; otherwise do nothing."""
    if keys and supports_localize(client.ps):
        yield from client.localize(list(keys))
    return None


def subepoch_synchronization(client) -> Generator:
    """The synchronization every PS variant runs between subepochs.

    The paper runs a global barrier after each subepoch for all systems and,
    for the stale PS, additionally one clock advance (Appendix A).
    """
    if needs_clock(client.ps):
        yield from client.clock()
    yield from client.barrier()
    return None
