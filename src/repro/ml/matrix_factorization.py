"""DSGD matrix factorization with the parameter-blocking PAL technique.

The task of §4 / Figure 6: factorize a sparse matrix ``V ≈ W H`` by stochastic
gradient descent.  Row factors ``W`` are partitioned with the data (each
worker owns the rows of its data partition and keeps them in worker-local
memory); column factors ``H`` live in the parameter server, one key per
column.

Parameter blocking (Gemulla et al. [15]) makes the column-factor accesses
local: an epoch is split into ``num_workers`` subepochs; in each subepoch a
worker processes only the entries whose column falls into its assigned block
and the blocks rotate between subepochs.  On a PS with dynamic parameter
allocation the rotation is a single ``localize`` call per worker and subepoch;
on a classic PS every column access goes to the column's static owner; on a
stale PS a clock advance per subepoch refreshes the replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import derive_seed
from repro.data.synthetic_matrix import SyntheticMatrix
from repro.errors import ExperimentError
from repro.ml.common import maybe_localize, subepoch_synchronization
from repro.ml.metrics import rmse
from repro.ml.results import EpochResult
from repro.pal.parameter_blocking import BlockSchedule, keys_of_block
from repro.ps.base import ParameterServer


@dataclass(frozen=True)
class MatrixFactorizationConfig:
    """Hyper-parameters of the DSGD matrix factorization task.

    Attributes:
        rank: Factorization rank (the paper uses 100; scaled down here).
        learning_rate: SGD step size.
        regularization: L2 regularization weight.
        compute_time_per_entry: Simulated computation time charged per
            processed matrix entry (controls the communication-to-computation
            ratio, cf. Table 4).
        init_scale: Standard deviation of the random factor initialization.
    """

    rank: int = 8
    learning_rate: float = 0.05
    regularization: float = 0.02
    compute_time_per_entry: float = 2e-6
    init_scale: float = 0.1

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ExperimentError(f"rank must be >= 1, got {self.rank}")
        if self.learning_rate <= 0:
            raise ExperimentError("learning_rate must be positive")
        if self.regularization < 0:
            raise ExperimentError("regularization must be non-negative")
        if self.compute_time_per_entry < 0:
            raise ExperimentError("compute_time_per_entry must be non-negative")


@dataclass(frozen=True)
class _EpochPlan:
    """Work assignment for one epoch at a given worker count.

    The elastic cluster runtime runs epochs with whatever workers are active
    at the time; data and blocks are (re)partitioned per participant count.
    Plans are cached, and with a static cluster the single cached plan is
    identical to the pre-elastic fixed assignment.

    ``entries`` holds the per-(worker, block) entry index arrays; the worker
    loop unboxes one block's schedule into plain Python lists at subepoch
    start (transient, so the cache never retains boxed copies of the data).
    """

    schedule: BlockSchedule
    entries: Dict[Tuple[int, int], "np.ndarray"]


class MatrixFactorizationTrainer:
    """Runs DSGD matrix factorization epochs on a parameter server.

    The same trainer runs on every PS variant: it localizes blocks when the PS
    supports it, advances the clock on the stale PS, and otherwise relies on
    plain pull/push.  :meth:`run_epoch` optionally takes the subset of worker
    clients that participate (elastic clusters), re-partitioning data and
    blocks for that worker count.
    """

    def __init__(
        self,
        ps: ParameterServer,
        matrix: SyntheticMatrix,
        config: Optional[MatrixFactorizationConfig] = None,
        seed: int = 0,
    ) -> None:
        self.ps = ps
        self.matrix = matrix
        self.config = config or MatrixFactorizationConfig()
        self.seed = seed
        num_workers = ps.cluster.total_workers
        if ps.ps_config.num_keys != matrix.num_cols:
            raise ExperimentError(
                f"the PS must have one key per matrix column "
                f"({matrix.num_cols}), got {ps.ps_config.num_keys}"
            )
        if ps.ps_config.value_length != self.config.rank:
            raise ExperimentError(
                f"the PS value length must equal the rank ({self.config.rank}), "
                f"got {ps.ps_config.value_length}"
            )
        self._plans: Dict[int, _EpochPlan] = {}
        self.schedule = self._plan(num_workers).schedule
        rng = np.random.default_rng(derive_seed(seed, 101))
        #: Worker-local row factors (each worker touches only its own rows).
        self.row_factors = rng.normal(0.0, self.config.init_scale, size=(matrix.num_rows, self.config.rank))
        self._epochs_run = 0
        self._initialize_column_factors(rng)

    # ------------------------------------------------------------ preparation
    def _plan(self, num_workers: int) -> _EpochPlan:
        """Return (and cache) the work assignment for ``num_workers`` workers."""
        plan = self._plans.get(num_workers)
        if plan is None:
            schedule = BlockSchedule(num_workers=num_workers)
            plan = _EpochPlan(schedule=schedule, entries=self._partition_entries(schedule))
            self._plans[num_workers] = plan
        return plan

    def _partition_entries(self, schedule: BlockSchedule):
        """Index matrix entries by (worker row block, column block)."""
        num_workers = schedule.num_workers
        matrix = self.matrix
        rows_per_worker = int(np.ceil(matrix.num_rows / num_workers))
        row_block_of = np.minimum(matrix.rows // max(1, rows_per_worker), num_workers - 1)
        column_blocks = np.array(
            [
                self._column_block_of(col, schedule.num_blocks)
                for col in range(matrix.num_cols)
            ],
            dtype=np.int64,
        )
        entry_col_blocks = column_blocks[matrix.cols]
        entries: Dict[Tuple[int, int], np.ndarray] = {}
        for worker in range(num_workers):
            worker_mask = row_block_of == worker
            for block in range(schedule.num_blocks):
                mask = worker_mask & (entry_col_blocks == block)
                entries[(worker, block)] = np.flatnonzero(mask)
        return entries

    def _column_block_of(self, col: int, num_blocks: int) -> int:
        base = self.matrix.num_cols // num_blocks
        remainder = self.matrix.num_cols % num_blocks
        threshold = remainder * (base + 1)
        if col < threshold:
            return col // (base + 1)
        return remainder + (col - threshold) // max(1, base)

    def _initialize_column_factors(self, rng: np.random.Generator) -> None:
        initial = rng.normal(
            0.0, self.config.init_scale, size=(self.matrix.num_cols, self.config.rank)
        )
        for col in range(self.matrix.num_cols):
            owner = self.ps.current_owner(col)
            self.ps.states[owner].storage.set(col, initial[col])

    # -------------------------------------------------------------- training
    def train(self, num_epochs: int = 1, compute_loss: bool = True) -> List[EpochResult]:
        """Run ``num_epochs`` epochs and return per-epoch run times and losses."""
        if num_epochs < 1:
            raise ExperimentError("num_epochs must be >= 1")
        results = []
        for _ in range(num_epochs):
            results.append(self.run_epoch(compute_loss=compute_loss))
        return results

    def run_epoch(
        self, compute_loss: bool = True, clients: Optional[Sequence] = None
    ) -> EpochResult:
        """Run one full DSGD epoch (one subepoch per participating worker).

        Args:
            compute_loss: Evaluate the training RMSE after the epoch.
            clients: Optional subset of worker clients that participate (the
                elastic runtime passes the workers of currently active nodes);
                defaults to every worker in the cluster.
        """
        clients = list(clients) if clients is not None else self.ps.clients()
        plan = self._plan(len(clients))
        participant_of = {client.worker_id: index for index, client in enumerate(clients)}

        def worker_fn(client, worker_id: int) -> Generator:
            return self._worker_epoch(client, participant_of[worker_id], plan)

        epoch = self._epochs_run
        start_time = self.ps.simulated_time
        results = self.ps.run_workers(worker_fn, clients=clients)
        for result in results:
            if result is not None:
                low, high, rows = result
                self.row_factors[low:high] = rows
        duration = self.ps.simulated_time - start_time
        self._epochs_run += 1
        loss = self.training_rmse() if compute_loss else None
        return EpochResult(epoch=epoch, duration=duration, end_time=self.ps.simulated_time, loss=loss)

    def _worker_epoch(self, client, participant: int, plan: _EpochPlan) -> Generator:
        config = self.config
        matrix = self.matrix
        schedule = plan.schedule
        learning_rate = config.learning_rate
        regularization = config.regularization
        compute_time = config.compute_time_per_entry
        row_factors = self.row_factors
        # Fused local steps (classic+sharedmem, Lapse): parameter blocking
        # makes this worker's block keys private until the subepoch barrier,
        # which is exactly the privacy window FusedLocalSteps requires.
        fused = client.fused_local_steps()
        for subepoch in range(schedule.num_subepochs):
            block = schedule.block_for(participant, subepoch)
            block_keys = keys_of_block(block, matrix.num_cols, schedule.num_blocks)
            yield from maybe_localize(client, block_keys)
            # Unbox this block's schedule once: the inner loop then performs
            # no NumPy scalar conversions.  Transient per subepoch — cached
            # plans keep only the compact index arrays.
            indices = plan.entries[(participant, block)]
            rows = matrix.rows[indices].tolist()
            cols = matrix.cols[indices].tolist()
            values = matrix.values[indices].astype(np.float64).tolist()
            for index in range(len(rows)):
                row = rows[index]
                col = cols[index]
                value = values[index]
                col_factor = None
                if fused is not None:
                    col_factor = fused.try_pull(col)
                if col_factor is None:
                    # Slow path (remote / queued / unfused variants): drain
                    # any fused time first so the operation issues at the
                    # exact simulated instant the step-by-step path would.
                    if fused is not None:
                        wake = fused.drain()
                        if wake is not None:
                            yield wake
                    handle = client.pull_async((col,))
                    if not handle.done:
                        yield handle.completion_event
                    col_factor = handle.first_value()
                    row_factor = row_factors[row]
                    error = float(row_factor @ col_factor) - value
                    grad_row = error * col_factor + regularization * row_factor
                    grad_col = error * row_factor + regularization * col_factor
                    row_factors[row] = row_factor - learning_rate * grad_row
                    client.push_async(
                        (col,), (-learning_rate * grad_col).reshape(1, -1), needs_ack=False
                    )
                    if compute_time > 0:
                        yield compute_time
                    continue
                row_factor = row_factors[row]
                error = float(row_factor @ col_factor) - value
                grad_row = error * col_factor + regularization * row_factor
                grad_col = error * row_factor + regularization * col_factor
                row_factors[row] = row_factor - learning_rate * grad_row
                fused.push(col, -learning_rate * grad_col)
                if compute_time > 0:
                    fused.advance(compute_time)
            if fused is not None:
                wake = fused.drain()
                if wake is not None:
                    yield wake
            yield from subepoch_synchronization(client)
        # Return this worker's row-factor slice.  On the simulated backend
        # these rows were updated in place and the writeback in run_epoch is
        # a no-op self-assignment; on the real backend the worker process
        # updated a forked copy, and the returned slice carries the rows home.
        num_workers = schedule.num_workers
        rows_per_worker = int(np.ceil(matrix.num_rows / num_workers))
        low = min(participant * rows_per_worker, matrix.num_rows)
        if participant == num_workers - 1:
            high = matrix.num_rows
        else:
            high = min((participant + 1) * rows_per_worker, matrix.num_rows)
        return low, high, row_factors[low:high]

    # ------------------------------------------------------------- evaluation
    def column_factors(self) -> np.ndarray:
        """Current column factors gathered from the parameter server."""
        return self.ps.all_parameters()

    def training_rmse(self) -> float:
        """RMSE over all revealed entries with the current factors."""
        matrix = self.matrix
        columns = self.column_factors()
        predictions = np.einsum(
            "ij,ij->i", self.row_factors[matrix.rows], columns[matrix.cols]
        )
        return rmse(predictions, matrix.values)
