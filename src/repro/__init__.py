"""repro: a reproduction of "Dynamic Parameter Allocation in Parameter Servers".

The package implements, on a simulated cluster, the Lapse parameter server
with dynamic parameter allocation (Renz-Wieland et al., VLDB 2020) together
with the systems it is compared against (classic PS-Lite-style and stale
Petuum-style parameter servers), the parameter-access-locality techniques it
enables (data clustering, parameter blocking, latency hiding), and the three
ML tasks of the paper's evaluation (matrix factorization, knowledge-graph
embeddings, word vectors).

Quickstart::

    from repro import ClusterConfig, ParameterServerConfig, LapsePS

    cluster = ClusterConfig(num_nodes=4, workers_per_node=4)
    ps = LapsePS(cluster, ParameterServerConfig(num_keys=1000, value_length=8))

    def worker(client, worker_id):
        yield from client.localize([worker_id])     # relocate the key here
        values = yield from client.pull([worker_id])
        yield from client.push([worker_id], values * 0 + 1)
        return None

    ps.run_workers(worker)
    print(ps.metrics().relocations, "relocations in", ps.simulated_time, "sim-seconds")
"""

from repro.config import (
    ClusterConfig,
    CostModel,
    ParameterServerConfig,
    WorkloadConfig,
)
from repro.ps import (
    ClassicIPCPS,
    ClassicPS,
    ClassicSharedMemoryPS,
    LapsePS,
    ReplicaPS,
    StalePS,
)

__version__ = "1.0.0"

__all__ = [
    "ClassicIPCPS",
    "ClassicPS",
    "ClassicSharedMemoryPS",
    "ClusterConfig",
    "CostModel",
    "LapsePS",
    "ParameterServerConfig",
    "ReplicaPS",
    "StalePS",
    "WorkloadConfig",
    "__version__",
]
