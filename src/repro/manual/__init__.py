"""Task-specific low-level baseline implementations.

The paper compares Lapse against a hand-tuned, task-specific low-level
implementation of the parameter-blocking matrix factorization algorithm
(Figure 9), which manages parameter movement manually with MPI primitives.
:mod:`repro.manual.low_level_mf` reproduces that baseline on the same
simulated cluster.
"""

from repro.manual.low_level_mf import LowLevelDSGD, LowLevelDSGDConfig

__all__ = ["LowLevelDSGD", "LowLevelDSGDConfig"]
