"""Hand-tuned low-level DSGD baseline (the Figure 9 comparison point).

The paper's strongest baseline for matrix factorization is a task-specific
low-level implementation (DSGD++ style) that manages parameter movement
manually with MPI primitives: column-factor *blocks* are shipped directly from
node to node between subepochs, workers operate on the raw arrays in place —
no key–value abstraction, no copying values in and out of a store, no
concurrency control.  This is exactly what gives it its 2.0–2.6x advantage
over Lapse (§4.4) while being unusable for other ML tasks.

The simulation charges:

* per entry: only the configured computation time (no per-key access latency),
* per subepoch: one block-transfer message per worker (the block's full size),
  plus a barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.config import ClusterConfig, derive_seed, message_size
from repro.data.synthetic_matrix import SyntheticMatrix
from repro.errors import ExperimentError
from repro.ml.metrics import rmse
from repro.ml.results import EpochResult
from repro.pal.parameter_blocking import BlockSchedule, keys_of_block
from repro.simnet import Network, Node, Simulator
from repro.simnet.node import worker_address


@dataclass(frozen=True)
class LowLevelDSGDConfig:
    """Hyper-parameters of the low-level DSGD baseline (mirrors the PS trainer)."""

    rank: int = 8
    learning_rate: float = 0.05
    regularization: float = 0.02
    compute_time_per_entry: float = 2e-6
    init_scale: float = 0.1

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ExperimentError("rank must be >= 1")
        if self.learning_rate <= 0:
            raise ExperimentError("learning_rate must be positive")


class LowLevelDSGD:
    """Task-specific DSGD implementation with manual block shipping."""

    def __init__(
        self,
        cluster: ClusterConfig,
        matrix: SyntheticMatrix,
        config: Optional[LowLevelDSGDConfig] = None,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.matrix = matrix
        self.config = config or LowLevelDSGDConfig()
        self.seed = seed
        self.sim = Simulator()
        self.network = Network(self.sim, cluster.cost_model)
        self.nodes = [Node(self.sim, self.network, i, cluster) for i in range(cluster.num_nodes)]
        num_workers = cluster.total_workers
        self.schedule = BlockSchedule(num_workers=num_workers)
        rng = np.random.default_rng(derive_seed(seed, 404))
        self.row_factors = rng.normal(
            0.0, self.config.init_scale, size=(matrix.num_rows, self.config.rank)
        )
        self.column_factors = rng.normal(
            0.0, self.config.init_scale, size=(matrix.num_cols, self.config.rank)
        )
        self._epochs_run = 0
        self._partition_entries()

    # ------------------------------------------------------------ preparation
    def _partition_entries(self) -> None:
        num_workers = self.cluster.total_workers
        matrix = self.matrix
        rows_per_worker = int(np.ceil(matrix.num_rows / num_workers))
        row_block_of = np.minimum(matrix.rows // max(1, rows_per_worker), num_workers - 1)
        self._entries: Dict[Tuple[int, int], np.ndarray] = {}
        num_blocks = self.schedule.num_blocks
        block_keys = [
            set(keys_of_block(block, matrix.num_cols, num_blocks)) for block in range(num_blocks)
        ]
        col_block = np.zeros(matrix.num_cols, dtype=np.int64)
        for block, keys in enumerate(block_keys):
            for key in keys:
                col_block[key] = block
        entry_blocks = col_block[matrix.cols]
        for worker in range(num_workers):
            worker_mask = row_block_of == worker
            for block in range(num_blocks):
                mask = worker_mask & (entry_blocks == block)
                self._entries[(worker, block)] = np.flatnonzero(mask)

    # -------------------------------------------------------------- training
    def train(self, num_epochs: int = 1, compute_loss: bool = True) -> List[EpochResult]:
        """Run ``num_epochs`` epochs of block-rotating DSGD."""
        if num_epochs < 1:
            raise ExperimentError("num_epochs must be >= 1")
        return [self.run_epoch(compute_loss=compute_loss) for _ in range(num_epochs)]

    def run_epoch(self, compute_loss: bool = True) -> EpochResult:
        """Run one epoch; returns the simulated epoch run time and RMSE."""
        epoch = self._epochs_run
        start_time = self.sim.now
        processes = []
        for worker in range(self.cluster.total_workers):
            processes.append(self.sim.process(self._worker_epoch(worker)))
        self.sim.run()
        for process in processes:
            if not process.processed:
                raise ExperimentError("low-level DSGD worker did not finish")
        duration = self.sim.now - start_time
        self._epochs_run += 1
        loss = self.training_rmse() if compute_loss else None
        return EpochResult(epoch=epoch, duration=duration, end_time=self.sim.now, loss=loss)

    def _worker_epoch(self, worker_id: int) -> Generator:
        config = self.config
        matrix = self.matrix
        num_blocks = self.schedule.num_blocks
        workers_per_node = self.cluster.workers_per_node
        node_id = worker_id // workers_per_node
        for subepoch in range(self.schedule.num_subepochs):
            block = self.schedule.block_for(worker_id, subepoch)
            block_cols = keys_of_block(block, matrix.num_cols, num_blocks)
            # Receive the block from the worker that held it in the previous
            # subepoch (one direct node-to-node message carrying the block).
            if subepoch > 0:
                previous_holder = (worker_id + 1) % self.cluster.total_workers
                previous_node = previous_holder // workers_per_node
                if previous_node != node_id:
                    size = message_size(len(block_cols), len(block_cols) * config.rank)
                    yield self.cluster.cost_model.message_time(size)
            for index in self._entries[(worker_id, block)]:
                row = int(matrix.rows[index])
                col = int(matrix.cols[index])
                value = float(matrix.values[index])
                row_factor = self.row_factors[row]
                col_factor = self.column_factors[col]
                error = float(row_factor @ col_factor) - value
                grad_row = error * col_factor + config.regularization * row_factor
                grad_col = error * row_factor + config.regularization * col_factor
                # In-place updates, no copies, no concurrency control: the
                # blocking schedule guarantees exclusive access.
                self.row_factors[row] = row_factor - config.learning_rate * grad_row
                self.column_factors[col] = col_factor - config.learning_rate * grad_col
                if config.compute_time_per_entry > 0:
                    yield config.compute_time_per_entry
        return None

    # ------------------------------------------------------------- evaluation
    def training_rmse(self) -> float:
        """RMSE over all revealed entries with the current factors."""
        matrix = self.matrix
        predictions = np.einsum(
            "ij,ij->i",
            self.row_factors[matrix.rows],
            self.column_factors[matrix.cols],
        )
        return rmse(predictions, matrix.values)

    @property
    def simulated_time(self) -> float:
        """Current simulated time in seconds."""
        return self.sim.now
