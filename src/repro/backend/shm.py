"""Shared-memory building blocks of the real execution backend.

Two pieces of cross-process state back the real (multiprocessing) backend:

* :class:`SharedDenseStorage` — a :class:`~repro.ps.storage.DenseStorage`
  whose value matrix and residency mask live in
  :mod:`multiprocessing.shared_memory` blocks.  The layout, the batch API,
  and the check-then-apply error contract are inherited unchanged; only the
  backing buffers differ, so every storage consumer (node state, policies,
  durability-free server handlers) works on it as-is.  Worker and server
  processes are forked, inherit the mapped blocks, and see each other's
  writes — this is the paper's shared-memory local access (§3.3) realized
  with actual shared memory instead of simulated access latencies.
* :class:`SharedDirectory` — the location directory: one ``int64`` owner id
  per key in a shared block, guarded by a cross-process lock.  It plays the
  role of the per-home-node ``home_location`` tables of the simulator's
  :class:`~repro.ps.policy.RelocationPolicy`: the home node of a key reads
  and updates the key's entry, every other node goes through the home node.
  :class:`DirectoryHomeView` adapts the array to the ``home_location``
  mapping interface the policy expects, so the policy runs unchanged.

Synchronization model: one lock per node shard serializes server-side
mutations with worker-side shared-memory access on that node; the directory
has its own lock.  NumPy reads/writes of a single row are not atomic, so
*every* access to a shared store must hold the owning node's lock — the
real backend's client and server loops do.
"""

from __future__ import annotations

from multiprocessing.shared_memory import SharedMemory
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.ps.storage import DenseStorage


def _attach_array(shm: SharedMemory, shape, dtype) -> np.ndarray:
    """View a shared-memory block as an ndarray of the given shape/dtype."""
    return np.ndarray(shape, dtype=dtype, buffer=shm.buf)


class SharedDenseStorage(DenseStorage):
    """Dense parameter store backed by shared-memory blocks.

    Construction allocates the blocks and zeroes them (matching
    ``DenseStorage``'s initial state); forked children inherit the mappings.
    Call :meth:`detach` in the parent when the cluster shuts down — it copies
    the current contents into private arrays (so late readers keep working),
    releases the views, and closes/unlinks the blocks.  Child processes never
    detach; their mappings die with the process.
    """

    def __init__(
        self,
        num_keys: int,
        value_length: int,
        initial_keys: Optional[Iterable[int]] = None,
    ) -> None:
        # Validates arguments and computes the initial arrays; the transient
        # private arrays are copied into the shared blocks below.
        super().__init__(num_keys, value_length, initial_keys)
        self._values_shm: Optional[SharedMemory] = SharedMemory(
            create=True, size=max(1, num_keys * value_length * 8)
        )
        self._present_shm: Optional[SharedMemory] = SharedMemory(
            create=True, size=max(1, num_keys)
        )
        values = _attach_array(self._values_shm, (num_keys, value_length), np.float64)
        present = _attach_array(self._present_shm, (num_keys,), np.bool_)
        values[:] = self._values
        present[:] = self._present
        self._values = values
        self._present = present

    def detach(self) -> None:
        """Release and unlink the shared blocks (parent-side shutdown).

        Idempotent.  The store remains usable afterwards (reads/writes hit a
        private copy of the final state).
        """
        if self._values_shm is None:
            return
        self._values = self._values.copy()
        self._present = self._present.copy()
        for shm in (self._values_shm, self._present_shm):
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._values_shm = None
        self._present_shm = None


class SharedDirectory:
    """Cross-process key-location directory: ``owners[key] -> node id``.

    The directory is the authoritative "where does this key live" record of
    the real backend.  It starts at the static partition and is updated by
    the *new owner's* server when a relocation transfer is installed, under
    :attr:`lock` — so a reader either sees the old owner (whose
    ``last_transfer`` record forwards to the new one) or the new owner (where
    the key is already resident), never a window with no route to the key.
    """

    def __init__(self, num_keys: int, initial_owners: Sequence[int], lock) -> None:
        self.num_keys = num_keys
        self.lock = lock
        self._shm: Optional[SharedMemory] = SharedMemory(
            create=True, size=max(1, num_keys * 8)
        )
        self.owners = _attach_array(self._shm, (num_keys,), np.int64)
        self.owners[:] = np.asarray(initial_owners, dtype=np.int64)

    def owner_of(self, key: int) -> int:
        """Current owner of ``key`` (callers that need a stable read hold lock)."""
        return int(self.owners[key])

    def owners_of(self, keys: Sequence[int]) -> np.ndarray:
        """Current owners of a key batch as an int64 array."""
        return self.owners[np.asarray(keys, dtype=np.int64)].copy()

    def set_owners(self, keys: Sequence[int], node: int) -> None:
        """Record ``node`` as the owner of ``keys`` (callers hold :attr:`lock`)."""
        self.owners[np.asarray(keys, dtype=np.int64)] = node

    def snapshot(self) -> np.ndarray:
        """Owner of every key as a private copy (quiescent-state readers)."""
        return self.owners.copy()

    def detach(self) -> None:
        """Release and unlink the shared block (parent-side shutdown)."""
        if self._shm is None:
            return
        self.owners = self.owners.copy()
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None


class DirectoryHomeView:
    """Adapt the shared directory to the ``home_location`` mapping interface.

    :class:`~repro.ps.policy.RelocationPolicy` consults
    ``state.home_location[key]`` for keys homed at ``state``'s node.  On the
    real backend that table *is* the shared directory; this view restricts
    reads to the node's home keys (mirroring the simulator's invariant that a
    node's table only holds entries for its own home keys).
    """

    __slots__ = ("_directory", "_partitioner", "_node_id")

    def __init__(self, directory: SharedDirectory, partitioner, node_id: int) -> None:
        self._directory = directory
        self._partitioner = partitioner
        self._node_id = node_id

    def __getitem__(self, key: int) -> int:
        if self._partitioner.node_of(key) != self._node_id:
            raise KeyError(key)
        return self._directory.owner_of(key)

    def __contains__(self, key: int) -> bool:
        return self._partitioner.node_of(key) == self._node_id
