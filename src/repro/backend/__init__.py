"""Real (multiprocessing + shared-memory) execution backend.

The simulated backend in :mod:`repro.ps` executes every worker and server as
a generator on one discrete-event kernel.  This package executes the same
systems — classic PS variants and Lapse — on real operating-system processes
with parameter shards in shared memory, behind the same client API.  See
:mod:`repro.backend.real` for the execution model and
:mod:`repro.backend.shm` for the shared-memory primitives.
"""

from repro.backend.real import (
    REAL_BACKEND_SYSTEMS,
    RealNodeState,
    RealParameterServer,
    RealWorkerClient,
)
from repro.backend.shm import DirectoryHomeView, SharedDenseStorage, SharedDirectory

__all__ = [
    "DirectoryHomeView",
    "REAL_BACKEND_SYSTEMS",
    "RealNodeState",
    "RealParameterServer",
    "RealWorkerClient",
    "SharedDenseStorage",
    "SharedDirectory",
]
