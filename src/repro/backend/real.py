"""Real multi-core execution backend: multiprocessing behind the PS API.

The simulated backend executes every worker and server as a generator on one
discrete-event kernel; this module executes them as *real* operating-system
processes on real cores, behind the same API:

* one **server process** per node runs a message loop over that node's
  command queue (a :class:`multiprocessing.Queue`), dispatching the same wire
  messages (:mod:`repro.ps.messages`) the simulator sends,
* one **worker process** per worker drives the trainer generator, performing
  compute yields as actual busy-wait CPU time and blocking on replies,
* dense parameter shards live in shared memory
  (:class:`repro.backend.shm.SharedDenseStorage`), so co-located workers
  access owned keys without a server round trip — the paper's shared-memory
  local access (§3.3) on actual shared pages,
* key ownership moves through a shared-memory location directory
  (:class:`repro.backend.shm.SharedDirectory`), the real-backend counterpart
  of the per-home-node location tables (§3.5).

The management policies run unchanged: :class:`~repro.ps.policy.StaticPolicy`
and :class:`~repro.ps.policy.RelocationPolicy` make the same per-key routing
decisions against a :class:`RealNodeState`, which exposes the same storage,
latch, and metric surfaces as the simulated :class:`~repro.ps.base.NodeState`
(and adapts ``home_location`` to the shared directory).

Semantics vs the simulator — *statistical equivalence*: true concurrency
makes message interleavings nondeterministic, so runs are not bit-identical
to the simulation.  They are equivalent in the aggregate: pushes are
cumulative (additive updates commute), relocation chases keys through
``last_transfer`` forwarding so no update is ever lost, and access/relocation
counters that depend only on the access pattern (pulls/pushes, key reads and
writes, localize calls, relocations) match the simulator exactly for
barrier-synchronized workloads like blocked matrix factorization (§4.1).
Timing-dependent counters (server messages, cache hits/misses, queueing) may
differ and are excluded from equivalence checks.

Op-id routing: the wire messages carry no reply queue, so each worker encodes
its identity in the operation id (``op_id = worker_id * OP_STRIDE + seq``);
servers route replies to ``reply_queues[op_id // OP_STRIDE]``.

Directory maintenance differs from the simulator in *when* the owner record
changes: the simulator's home node updates its table when it processes the
localize request, while the real backend updates the directory when the new
owner **installs** the transfer.  Until then the directory names the old
owner, whose ``last_transfer`` record forwards stragglers — per-producer FIFO
of the command queues guarantees the transfer arrives at the new owner before
any message the old owner forwards after it.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
import traceback
import weakref
from collections import defaultdict
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.shm import DirectoryHomeView, SharedDenseStorage, SharedDirectory
from repro.config import ClusterConfig, ParameterServerConfig, derive_seed, message_size
from repro.errors import (
    ParameterServerError,
    RelocationError,
    UnsupportedOperationError,
)
from repro.ps.base import NodeState, WorkerClient, copy_rows, select_rows
from repro.ps.messages import (
    LocalizeAck,
    LocalizeRequest,
    PullRequest,
    PullResponse,
    PushAck,
    PushRequest,
    RelocateInstruction,
    RelocationTransfer,
)
from repro.ps.metrics import PSMetrics
from repro.ps.partition import make_partitioner
from repro.ps.policy import (
    ROUTE_LOCAL,
    ROUTE_REMOTE,
    RelocationPolicy,
    StaticPolicy,
)
from repro.ps.storage import LatchTable
from repro.simnet import NetworkStats, WallClock

__all__ = [
    "REAL_BACKEND_SYSTEMS",
    "RealNodeState",
    "RealParameterServer",
    "RealWorkerClient",
]

#: Op-id stride per worker: ids below the stride belong to worker 0, etc.
OP_STRIDE = 1 << 32

#: Post-run drain rounds.  Fire-and-forget pushes may still be in flight when
#: the workers exit, and a push can be forwarded up to twice (stale location →
#: home → owner, Figure 5d).  Each round is a full barrier over all server
#: processes, so three rounds cover the two forwarding hops plus the
#: cross-producer reordering window of the queue feeder threads.
DRAIN_ROUNDS = 3

#: Systems the real backend implements, as accepted by
#: :func:`repro.experiments.runner.make_parameter_server`.
REAL_BACKEND_SYSTEMS = ("classic", "classic_fast_local", "lapse")

#: system -> (report name, policy class, shared-memory local access).
#: Names match the simulated variants so reports line up across backends.
_SYSTEM_SPECS = {
    "classic": ("classic-ps-lite", StaticPolicy, False),
    "classic_fast_local": ("classic+sharedmem", StaticPolicy, True),
    "lapse": ("lapse", RelocationPolicy, True),
}


class _DrainProbe:
    """Flush marker circulated through the command queues after a run."""

    def __init__(self, round_number: int) -> None:
        self.round_number = round_number


class _Shutdown:
    """Sentinel that terminates a server process's message loop."""


def _busy_wait(seconds: float) -> None:
    """Burn ``seconds`` of CPU time (the real counterpart of a compute yield).

    Sleeping would free the core and overstate multi-process scaling; training
    compute occupies a core, so the backend does too.
    """
    if seconds <= 0.0:
        return
    end = time.perf_counter() + seconds
    while time.perf_counter() < end:
        pass


def _release_shared(storages: List[SharedDenseStorage], directory: SharedDirectory) -> None:
    """Detach every shared block (finalizer target; must not reference the PS)."""
    for storage in storages:
        storage.detach()
    directory.detach()


class _RealNetwork:
    """Traffic-counter holder mirroring ``ParameterServer.network.stats``."""

    def __init__(self) -> None:
        self.stats = NetworkStats()


class _CompletedHandle:
    """Operation handle of the real backend: always complete.

    Worker clients block until an operation finishes, so by the time user code
    sees the handle the values are already there.  The sync/async split of the
    API is preserved — ``pull_async`` still returns immediately *per the API
    contract* — but ``done`` is always True and waiting is free.
    """

    __slots__ = ("op_type", "keys", "_values")

    done = True

    def __init__(self, op_type: str, keys: Tuple[int, ...], values: Optional[np.ndarray]) -> None:
        self.op_type = op_type
        self.keys = keys
        self._values = values

    def values(self) -> np.ndarray:
        if self._values is None:
            raise ParameterServerError(f"{self.op_type} operations carry no values")
        return self._values

    def first_value(self) -> np.ndarray:
        return self.values()[0]

    @property
    def completion_event(self):
        raise ParameterServerError(
            "real-backend handles complete synchronously and have no event"
        )


class RealNodeState:
    """Per-node state of the real backend: shared storage, latches, metrics.

    Exposes the exact access surface of the simulated
    :class:`~repro.ps.base.NodeState` (storage/latches/metrics plus the
    ``read_local*``/``write_local*`` methods, which are reused verbatim), so
    the management policies and their ``handle_read``/``handle_write`` error
    contracts run unchanged.  After a fork, each process owns a private copy
    of this object whose ``storage`` still maps the shared blocks.
    """

    # The simulated implementations only touch self.storage / self.latches,
    # so they transplant directly.
    read_local = NodeState.read_local
    write_local = NodeState.write_local
    read_local_many = NodeState.read_local_many
    write_local_many = NodeState.write_local_many

    def __init__(self, ps: "RealParameterServer", node_id: int) -> None:
        self.ps = ps
        self.node_id = node_id
        # Tracing buffer (a repro.obs.NodeTrace), installed by the tracer when
        # tracing is enabled — same contract as the simulated NodeState.
        self.trace: Optional[Any] = None
        self.metrics = PSMetrics()
        self.latches = LatchTable(ps.ps_config.num_latches)
        self.storage = SharedDenseStorage(
            ps.ps_config.num_keys, ps.ps_config.value_length
        )
        policy = ps.management_policy
        policy.attach(self)
        if policy.supports_localize:
            # The home-node location table *is* the shared directory here.
            self.home_location = DirectoryHomeView(ps.directory, ps.partitioner, node_id)


class RealWorkerClient(WorkerClient):
    """PS client bound to one worker process.

    Reuses the simulated client's key checking, update coercion, chunking,
    and sync-over-async wrappers; the issue paths are reimplemented as
    blocking calls over the command/reply queues, with the same per-key
    routing (via the management policy) and the same metric accounting as the
    simulated clients.
    """

    def __init__(
        self,
        ps: "RealParameterServer",
        state: RealNodeState,
        worker_id: int,
        local_worker_id: int,
    ) -> None:
        self.ps = ps
        self.state = state
        self.worker_id = worker_id
        self.local_worker_id = local_worker_id
        self.node_id = state.node_id
        # Same stream derivation as Node.worker_rng, so data shuffles match
        # the simulator run for run-vs-run comparisons.
        self.rng = np.random.default_rng(
            derive_seed(ps.cluster.seed, state.node_id, local_worker_id + 1)
        )
        self._clock = 0
        self._op_counter = 0
        self._barrier = None  # installed by run_workers for the run's cohort
        self._reply_queue = ps.reply_queues[worker_id]
        self._net = NetworkStats()
        policy = ps.management_policy
        self._cache_locations = ps.ps_config.location_caches and policy.supports_localize

    # ------------------------------------------------------------------ helpers
    def _next_op_id(self) -> int:
        self._op_counter += 1
        return self.worker_id * OP_STRIDE + self._op_counter

    def _reply(self, op_id: int) -> Any:
        """Next reply for ``op_id`` (the client has one operation in flight)."""
        message = self._reply_queue.get()
        if message.op_id != op_id:
            raise ParameterServerError(
                f"worker {self.worker_id} received reply for op {message.op_id} "
                f"while waiting for op {op_id}"
            )
        return message

    def _note_responder(self, message: Any) -> None:
        """Location-cache learning, mirroring the simulator's van hook."""
        if not self._cache_locations:
            return
        responder = message.responder_node
        if responder == self.node_id:
            return
        cache = self.state.location_cache
        for key in message.keys:
            cache[key] = responder

    # --------------------------------------------------------------- async API
    def pull_async(self, keys: Sequence[int]) -> _CompletedHandle:
        trace = self._trace
        if trace is None:
            return self._pull_async_impl(keys)
        clock = self.ps.clock
        issued = clock.now
        handle = self._pull_async_impl(keys)
        self._record_op(trace, "pull", handle.keys, issued, clock.now)
        return handle

    def _pull_async_impl(self, keys: Sequence[int]) -> _CompletedHandle:
        keys = self._check_keys(keys)
        ps = self.ps
        state = self.state
        metrics = state.metrics
        policy = ps.management_policy
        local_items: List[Tuple[int, int]] = []
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        pending_rows: Dict[int, List[int]] = defaultdict(list)
        for row, (key, route) in enumerate(zip(keys, policy.route_many(state, keys))):
            if route.kind == ROUTE_LOCAL:
                local_items.append((key, row))
            elif route.kind == ROUTE_REMOTE:
                remote_groups[route.destination].append(key)
                pending_rows[key].append(row)
            else:
                raise ParameterServerError(
                    f"real backend cannot route kind {route.kind!r} (key {key})"
                )
        # Same op-level and per-key accounting as the simulated clients: the
        # operation counts as remote iff routing found a remote destination.
        if local_items:
            metrics.key_reads_local += len(local_items)
        for dest_keys in remote_groups.values():
            metrics.key_reads_remote += len(dest_keys)
        if remote_groups:
            metrics.pulls_remote += 1
        else:
            metrics.pulls_local += 1
        values = np.empty((len(keys), self.value_length), dtype=np.float64)
        send_groups: Dict[int, List[int]] = dict(remote_groups)
        if local_items:
            if ps._shared_local:
                misses = self._pull_shared_local(local_items, values)
                for key, row in misses:
                    # Relocated away between routing and the locked read;
                    # re-route without extra counters (the simulator's
                    # mid-access reissue behaves identically).
                    send_groups.setdefault(policy.route_destination(state, key), []).append(key)
                    pending_rows[key].append(row)
            else:
                # PS-Lite-style IPC: local keys go through the local server.
                group = send_groups.setdefault(self.node_id, [])
                for key, row in local_items:
                    group.append(key)
                    pending_rows[key].append(row)
        outstanding = 0
        op_id = self._next_op_id()
        for destination, dest_keys in send_groups.items():
            for chunk in self._chunks(dest_keys):
                request = PullRequest(op_id, tuple(chunk), self.node_id, self.worker_id)
                ps._send_command(
                    self._net, self.node_id, destination, request, message_size(len(chunk), 0)
                )
                outstanding += len(chunk)
        while outstanding:
            message = self._reply(op_id)
            if not isinstance(message, PullResponse):
                raise ParameterServerError(
                    f"worker {self.worker_id} expected a PullResponse, got {message!r}"
                )
            self._note_responder(message)
            for index, key in enumerate(message.keys):
                values[pending_rows[key].pop(0)] = message.values[index]
                outstanding -= 1
        return _CompletedHandle("pull", keys, values)

    def _pull_shared_local(
        self, local_items: List[Tuple[int, int]], values: np.ndarray
    ) -> List[Tuple[int, int]]:
        """Read locally-routed keys through shared memory; return the misses."""
        state = self.state
        local_keys = [key for key, _ in local_items]
        with self.ps.node_locks[self.node_id]:
            flags = state.storage.contains_flags(local_keys)
            present_keys: List[int] = []
            present_rows: List[int] = []
            misses: List[Tuple[int, int]] = []
            for (key, row), resident in zip(local_items, flags):
                if resident:
                    present_keys.append(key)
                    present_rows.append(row)
                else:
                    misses.append((key, row))
            if present_keys:
                values[present_rows] = state.read_local_many(present_keys)
        return misses

    def push_async(
        self, keys: Sequence[int], updates: Any, needs_ack: bool = False
    ) -> _CompletedHandle:
        trace = self._trace
        if trace is None:
            return self._push_async_impl(keys, updates, needs_ack)
        clock = self.ps.clock
        issued = clock.now
        handle = self._push_async_impl(keys, updates, needs_ack)
        self._record_op(trace, "push", handle.keys, issued, clock.now)
        return handle

    def _push_async_impl(
        self, keys: Sequence[int], updates: Any, needs_ack: bool = False
    ) -> _CompletedHandle:
        keys = self._check_keys(keys)
        updates = self._prepare_updates(keys, updates)
        ps = self.ps
        state = self.state
        metrics = state.metrics
        policy = ps.management_policy
        key_to_row = {key: index for index, key in enumerate(keys)}
        local_items: List[Tuple[int, int]] = []
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for row, (key, route) in enumerate(
            zip(keys, policy.route_many(state, keys, write=True))
        ):
            if route.kind == ROUTE_LOCAL:
                local_items.append((key, row))
            elif route.kind == ROUTE_REMOTE:
                remote_groups[route.destination].append(key)
            else:
                raise ParameterServerError(
                    f"real backend cannot route kind {route.kind!r} (key {key})"
                )
        if local_items:
            metrics.key_writes_local += len(local_items)
        for dest_keys in remote_groups.values():
            metrics.key_writes_remote += len(dest_keys)
        if remote_groups:
            metrics.pushes_remote += 1
        else:
            metrics.pushes_local += 1
        send_groups: Dict[int, List[int]] = dict(remote_groups)
        if local_items:
            if ps._shared_local:
                misses = self._push_shared_local(local_items, updates)
                for key, _row in misses:
                    send_groups.setdefault(policy.route_destination(state, key), []).append(key)
            else:
                send_groups.setdefault(self.node_id, []).extend(
                    key for key, _ in local_items
                )
        outstanding = 0
        op_id = self._next_op_id()
        for destination, dest_keys in send_groups.items():
            for chunk in self._chunks(dest_keys):
                chunk_updates = copy_rows(updates, [key_to_row[key] for key in chunk])
                request = PushRequest(
                    op_id, tuple(chunk), chunk_updates, self.node_id, self.worker_id, needs_ack
                )
                ps._send_command(
                    self._net,
                    self.node_id,
                    destination,
                    request,
                    message_size(len(chunk), chunk_updates.size),
                )
                outstanding += len(chunk)
        if needs_ack:
            while outstanding:
                message = self._reply(op_id)
                if not isinstance(message, PushAck):
                    raise ParameterServerError(
                        f"worker {self.worker_id} expected a PushAck, got {message!r}"
                    )
                self._note_responder(message)
                outstanding -= len(message.keys)
        return _CompletedHandle("push", keys, None)

    def _push_shared_local(
        self, local_items: List[Tuple[int, int]], updates: np.ndarray
    ) -> List[Tuple[int, int]]:
        """Apply locally-routed updates through shared memory; return misses."""
        state = self.state
        local_keys = [key for key, _ in local_items]
        with self.ps.node_locks[self.node_id]:
            flags = state.storage.contains_flags(local_keys)
            present_keys: List[int] = []
            present_rows: List[int] = []
            misses: List[Tuple[int, int]] = []
            for (key, row), resident in zip(local_items, flags):
                if resident:
                    present_keys.append(key)
                    present_rows.append(row)
                else:
                    misses.append((key, row))
            if present_keys:
                state.write_local_many(present_keys, select_rows(updates, present_rows))
        return misses

    def localize_async(self, keys: Sequence[int]) -> _CompletedHandle:
        trace = self._trace
        if trace is None:
            return self._localize_async_impl(keys)
        clock = self.ps.clock
        issued = clock.now
        handle = self._localize_async_impl(keys)
        self._record_op(trace, "localize", handle.keys, issued, clock.now)
        return handle

    def _localize_async_impl(self, keys: Sequence[int]) -> _CompletedHandle:
        keys = self._check_keys(keys)
        ps = self.ps
        policy = ps.management_policy
        if not policy.supports_localize:
            raise UnsupportedOperationError(
                f"{type(ps).__name__} allocates parameters statically and does "
                "not support localize"
            )
        state = self.state
        metrics = state.metrics
        metrics.localize_calls += 1
        metrics.localized_keys += len(keys)
        started = time.monotonic()
        unique = list(dict.fromkeys(keys))
        with ps.node_locks[self.node_id]:
            flags = state.storage.contains_flags(unique)
        need = [key for key, resident in zip(unique, flags) if not resident]
        if not need:
            return _CompletedHandle("localize", keys, None)
        op_id = self._next_op_id()
        home_groups: Dict[int, List[int]] = defaultdict(list)
        for key in need:
            home_groups[ps.home_node(key)].append(key)
        pending = 0
        for home, home_keys in home_groups.items():
            if home == self.node_id:
                # The directory is shared memory: apply the home-side logic
                # directly, saving message 1 of the protocol (as the
                # simulator does for requests homed at the requester).
                pending += self._localize_at_home(op_id, home_keys)
            else:
                request = LocalizeRequest(op_id, tuple(home_keys), self.node_id)
                ps._send_command(
                    self._net, self.node_id, home, request, message_size(len(home_keys), 0)
                )
                pending += len(home_keys)
        acked = 0
        while acked < pending:
            message = self._reply(op_id)
            if not isinstance(message, LocalizeAck):
                raise ParameterServerError(
                    f"worker {self.worker_id} expected a LocalizeAck, got {message!r}"
                )
            acked += len(message.keys)
        if pending:
            # The simulator records per-key request-to-install times on the
            # installing server; here the worker observes completion, which
            # aggregates to the same per-key relocation latencies.
            elapsed = time.monotonic() - started
            for _ in range(pending):
                metrics.relocation_time.record(elapsed)
        return _CompletedHandle("localize", keys, None)

    def _localize_at_home(self, op_id: int, keys: List[int]) -> int:
        """Home-side half of a localize for keys homed at this worker's node.

        Returns the number of keys that actually need a transfer (keys the
        directory already places at this node complete without one).
        """
        ps = self.ps
        directory = ps.directory
        with directory.lock:
            owners = directory.owners_of(keys)
        owner_groups: Dict[int, List[int]] = defaultdict(list)
        pending = 0
        for key, owner in zip(keys, owners.tolist()):
            if owner == self.node_id:
                continue
            owner_groups[owner].append(key)
            pending += 1
        for owner, owner_keys in owner_groups.items():
            instruction = RelocateInstruction(
                op_id, tuple(owner_keys), self.node_id, self.node_id
            )
            ps._send_command(
                self._net, self.node_id, owner, instruction, message_size(len(owner_keys), 0)
            )
        return pending

    # --------------------------------------------------------------- tracing
    def _record_op(
        self, trace: Any, op_type: str, keys: Any, issued: float, completed: float
    ) -> None:
        """Record one wall-clock operation span plus its heatmap accesses.

        The wrapped ``*_async`` methods block, so issue and completion bracket
        the whole operation; timestamps come from the server's
        :class:`~repro.simnet.clock.WallClock` (seconds since construction,
        comparable across the forked worker processes).
        """
        trace.op(op_type, self.worker_id, issued, completed, len(keys))
        if trace.heat_interval is not None:
            for key in keys:
                trace.heat_key(int(key), issued)

    # ----------------------------------------------------------- local access
    def pull_if_local(self, key: int) -> Optional[np.ndarray]:
        key = int(self._check_keys([key])[0])
        state = self.state
        with self.ps.node_locks[self.node_id]:
            if state.storage.contains(key):
                state.metrics.key_reads_local += 1
                state.metrics.pulls_local += 1
                trace = self._trace
                if trace is not None:
                    trace.heat_key(key, self.ps.clock.now)
                return state.read_local(key)
        return None

    def fused_local_steps(self):
        """No fusion: real local accesses are already direct memory accesses.

        Fusion exists to skip simulation-kernel events; the real backend has
        no kernel to skip, so the trainers' slow path *is* the fast path.
        """
        return None

    # ------------------------------------------------------------ coordination
    def barrier(self) -> Generator:
        """Block until every worker of the current run reached this barrier."""
        barrier = self._barrier
        if barrier is None:
            raise ParameterServerError(
                "barrier() is only available inside run_workers on the real backend"
            )
        barrier.wait()
        return None
        yield  # pragma: no cover - makes this function a generator

    # ------------------------------------------------------------------ waiting
    def wait(self, handle: _CompletedHandle) -> Generator:
        """Wait for an operation (always already complete on this backend)."""
        return handle
        yield  # pragma: no cover - makes this function a generator

    def wait_all(self, handles) -> Generator:
        """Wait for all of ``handles`` (always already complete)."""
        for _ in handles:
            pass
        return None
        yield  # pragma: no cover - makes this function a generator


class RealParameterServer:
    """Parameter server executing on real processes and shared memory.

    Construction builds the shared state (storage shards, directory, queues)
    in the parent; :meth:`run_workers` forks one server process per node and
    one process per worker, waits for the workers, drains in-flight messages,
    and merges the children's metrics and traffic counters back into the
    parent's per-node states.  Between runs (epochs) the parent can read and
    write parameters directly — the shared blocks persist across runs.

    Use as a context manager (or call :meth:`shutdown`) to release the
    shared-memory blocks.
    """

    client_class = RealWorkerClient
    #: Matches the ``ParameterServer`` attribute; the elastic runtime and
    #: durability subsystem check these and are not supported here.
    membership = None
    durability = None
    #: Installed when a :class:`~repro.obs.TraceConfig` is passed (wall-clock
    #: time domain; see :mod:`repro.obs`).
    tracer = None

    def __init__(
        self,
        system: str,
        cluster: ClusterConfig,
        ps_config: Optional[ParameterServerConfig] = None,
        timeout: float = 300.0,
        trace: Optional[Any] = None,
    ) -> None:
        if system not in _SYSTEM_SPECS:
            raise ParameterServerError(
                f"the real backend does not implement system {system!r}; "
                f"choose one of {', '.join(REAL_BACKEND_SYSTEMS)}"
            )
        if "fork" not in mp.get_all_start_methods():
            raise ParameterServerError(
                "the real backend requires the fork start method (POSIX only)"
            )
        name, policy_class, shared_local = _SYSTEM_SPECS[system]
        self.system = system
        self.name = name
        self.policy_class = policy_class
        self._shared_local = shared_local
        self.cluster = cluster
        ps_config = ps_config or ParameterServerConfig()
        if not ps_config.dense_storage:
            raise ParameterServerError(
                "the real backend requires dense storage (fixed-layout "
                "shared-memory slabs)"
            )
        if ps_config.shared_memory_local_access != shared_local:
            import dataclasses

            ps_config = dataclasses.replace(
                ps_config, shared_memory_local_access=shared_local
            )
        self.ps_config = ps_config
        self.timeout = timeout
        self.clock = WallClock()
        self.partitioner = make_partitioner(
            "range", ps_config.num_keys, cluster.num_nodes
        )
        context = mp.get_context("fork")
        self._ctx = context
        self.node_locks = [context.Lock() for _ in range(cluster.num_nodes)]
        keys = np.arange(ps_config.num_keys, dtype=np.int64)
        self.directory = SharedDirectory(
            ps_config.num_keys, self.partitioner.nodes_of(keys), context.Lock()
        )
        self._management_policy = None
        self.states: List[RealNodeState] = [
            RealNodeState(self, node) for node in range(cluster.num_nodes)
        ]
        self.command_queues = [context.Queue() for _ in range(cluster.num_nodes)]
        self.reply_queues = [context.SimpleQueue() for _ in range(cluster.total_workers)]
        self.parent_queue = context.Queue()
        self.network = _RealNetwork()
        self._initialize_parameters()
        self._clients: Dict[Tuple[int, int], RealWorkerClient] = {}
        if trace is not None and trace.enabled:
            from repro.obs import Tracer

            # Wall-clock time domain: op spans are recorded by the worker
            # clients (server/network spans are simulator-only).
            self.tracer = Tracer(self, trace, time_domain="wall")
        self._finalizer = weakref.finalize(
            self, _release_shared, [state.storage for state in self.states], self.directory
        )

    def _initialize_parameters(self) -> None:
        num_keys = self.ps_config.num_keys
        keys = np.arange(num_keys, dtype=np.int64)
        owners = self.partitioner.nodes_of(keys)
        values = np.zeros((num_keys, self.ps_config.value_length), dtype=np.float64)
        for node in range(self.cluster.num_nodes):
            node_keys = keys[owners == node]
            if node_keys.size:
                self.states[node].storage.insert_many(node_keys, values[node_keys])

    # ------------------------------------------------------------------ policy
    @property
    def management_policy(self):
        if self._management_policy is None:
            self._management_policy = self.policy_class(self)
        return self._management_policy

    # ---------------------------------------------------------------- clients
    def client(self, node: int, local_worker: int) -> RealWorkerClient:
        """Return (and cache) the client for worker ``local_worker`` on ``node``."""
        key = (node, local_worker)
        if key not in self._clients:
            worker_id = self.cluster.worker_id(node, local_worker)
            client = self.client_class(
                self, self.states[node], worker_id, local_worker
            )
            tracer = self.tracer
            if tracer is not None and tracer.config.ops:
                client._trace = self.states[node].trace
            self._clients[key] = client
        return self._clients[key]

    def clients(self) -> List[RealWorkerClient]:
        """Return clients for every worker in the cluster, ordered by worker id."""
        result = []
        for node in range(self.cluster.num_nodes):
            for local_worker in range(self.cluster.workers_per_node):
                result.append(self.client(node, local_worker))
        return result

    # ------------------------------------------------------------------- runs
    def run_workers(
        self,
        worker_fn: Callable[[RealWorkerClient, int], Generator],
        until: Optional[float] = None,
        clients: Optional[Sequence[RealWorkerClient]] = None,
    ) -> List[Any]:
        """Run ``worker_fn`` as one OS process per worker; returns their values.

        Forks one server process per node plus the worker processes (fork, so
        ``worker_fn`` and its closure need not be picklable), waits for all
        workers, drains in-flight fire-and-forget messages, shuts the servers
        down, and merges all child metrics/traffic into the parent states.
        """
        if until is not None:
            raise ParameterServerError(
                "the real backend runs on wall-clock time and has no "
                "simulated-time cutoff"
            )
        client_list = list(clients) if clients is not None else self.clients()
        if not client_list:
            raise ParameterServerError("run_workers requires at least one client")
        barrier = self._ctx.Barrier(len(client_list))
        for client in client_list:
            client._barrier = barrier
        num_nodes = self.cluster.num_nodes
        processes: List[Any] = []
        try:
            for node in range(num_nodes):
                process = self._ctx.Process(
                    target=self._server_main, args=(node,), name=f"server-{node}", daemon=True
                )
                process.start()
                processes.append(process)
            for client in client_list:
                process = self._ctx.Process(
                    target=self._worker_main,
                    args=(client, worker_fn),
                    name=f"worker-{client.worker_id}",
                    daemon=True,
                )
                process.start()
                processes.append(process)
            deadline = time.monotonic() + self.timeout
            results: Dict[int, Any] = {}
            pending_workers = {client.worker_id for client in client_list}
            while pending_workers:
                report = self._collect(deadline, processes)
                if report[0] == "worker_done":
                    _, worker_id, value, metrics, net, spans = report
                    results[worker_id] = value
                    node = self.cluster.node_of_worker(worker_id)
                    self._merge_metrics(node, metrics)
                    self._merge_net(net)
                    if spans is not None:
                        self.states[node].trace.merge_from(spans)
                    pending_workers.discard(worker_id)
                else:
                    self._unexpected_report(report)
            for round_number in range(DRAIN_ROUNDS):
                for node in range(num_nodes):
                    self.command_queues[node].put(_DrainProbe(round_number))
                acked: set = set()
                while len(acked) < num_nodes:
                    report = self._collect(deadline, processes)
                    if report[0] == "drain" and report[2] == round_number:
                        acked.add(report[1])
                    else:
                        self._unexpected_report(report)
            for node in range(num_nodes):
                self.command_queues[node].put(_Shutdown())
            done_nodes: set = set()
            while len(done_nodes) < num_nodes:
                report = self._collect(deadline, processes)
                if report[0] == "server_done":
                    _, node, metrics, net = report
                    self._merge_metrics(node, metrics)
                    self._merge_net(net)
                    done_nodes.add(node)
                else:
                    self._unexpected_report(report)
            for process in processes:
                process.join(timeout=max(0.0, deadline - time.monotonic()) + 5.0)
        except BaseException:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            raise
        finally:
            for client in client_list:
                client._barrier = None
        return [results[client.worker_id] for client in client_list]

    def _collect(self, deadline: float, processes: List[Any]) -> Tuple:
        """Next child report, watching for died children and the deadline."""
        while True:
            try:
                return self.parent_queue.get(timeout=0.25)
            except queue_module.Empty:
                if time.monotonic() > deadline:
                    for process in processes:
                        if process.is_alive():
                            process.terminate()
                    raise ParameterServerError(
                        f"real backend timed out after {self.timeout:.0f}s "
                        "(deadlock or overload)"
                    )
                for process in processes:
                    if process.exitcode not in (None, 0):
                        raise ParameterServerError(
                            f"real backend process {process.name} died with "
                            f"exit code {process.exitcode}"
                        )

    def _unexpected_report(self, report: Tuple) -> None:
        if report[0] == "error":
            raise ParameterServerError(
                f"real backend process {report[1]} failed:\n{report[2]}"
            )
        raise ParameterServerError(f"unexpected child report {report[0]!r}")

    def _merge_metrics(self, node: int, metrics: PSMetrics) -> None:
        self.states[node].metrics = self.states[node].metrics.merge(metrics)

    def _merge_net(self, net: NetworkStats) -> None:
        stats = self.network.stats
        stats.messages_sent += net.messages_sent
        stats.remote_messages += net.remote_messages
        stats.local_messages += net.local_messages
        stats.bytes_sent += net.bytes_sent
        stats.delivery_events += net.delivery_events
        for channel, count in net.per_channel_messages.items():
            stats.per_channel_messages[channel] = (
                stats.per_channel_messages.get(channel, 0) + count
            )

    # -------------------------------------------------------------- messaging
    def _count_message(self, net: NetworkStats, src: int, dst: int, size: int) -> None:
        net.messages_sent += 1
        net.delivery_events += 1
        if src != dst:
            net.remote_messages += 1
            net.bytes_sent += size
            channel = net.per_channel_messages
            channel[(src, dst)] = channel.get((src, dst), 0) + 1
        else:
            net.local_messages += 1

    def _send_command(
        self, net: NetworkStats, src: int, dst: int, message: Any, size: int
    ) -> None:
        """Send ``message`` to the server process of node ``dst``."""
        self._count_message(net, src, dst, size)
        self.command_queues[dst].put(message)

    def _reply_to_worker(
        self, net: NetworkStats, src_node: int, op_id: int, message: Any, size: int
    ) -> None:
        """Route a reply to the worker encoded in ``op_id``."""
        worker_id = op_id // OP_STRIDE
        dst_node = self.cluster.node_of_worker(worker_id)
        self._count_message(net, src_node, dst_node, size)
        self.reply_queues[worker_id].put(message)

    # ---------------------------------------------------------- server process
    def _server_main(self, node_id: int) -> None:
        state = self.states[node_id]
        # The fork copied the parent's (already merged) metrics; this
        # process's contribution is shipped back and merged separately.
        state.metrics = PSMetrics()
        net = NetworkStats()
        commands = self.command_queues[node_id]
        try:
            while True:
                message = commands.get()
                if isinstance(message, _DrainProbe):
                    self.parent_queue.put(("drain", node_id, message.round_number))
                    continue
                if isinstance(message, _Shutdown):
                    self.parent_queue.put(("server_done", node_id, state.metrics, net))
                    return
                state.metrics.server_messages += 1
                if isinstance(message, PullRequest):
                    self._serve_access(state, net, message, is_pull=True)
                elif isinstance(message, PushRequest):
                    self._serve_access(state, net, message, is_pull=False)
                elif isinstance(message, LocalizeRequest):
                    self._serve_localize(state, net, message)
                elif isinstance(message, RelocateInstruction):
                    self._serve_instruction(state, net, message)
                elif isinstance(message, RelocationTransfer):
                    self._serve_transfer(state, net, message)
                else:
                    raise ParameterServerError(
                        f"{self.name} PS server on node {node_id} received "
                        f"unexpected message {message!r}"
                    )
        except BaseException:
            self.parent_queue.put(("error", f"server-{node_id}", traceback.format_exc()))

    def _serve_access(
        self, state: RealNodeState, net: NetworkStats, request: Any, is_pull: bool
    ) -> None:
        """Answer a pull/push; under relocation, forward keys that moved away."""
        policy = self.management_policy
        keys = request.keys
        if not policy.supports_localize:
            # Static allocation: this server must own every key (same error
            # contract as the simulated classic servers).
            with self.node_locks[state.node_id]:
                if is_pull:
                    values = policy.handle_read(state, keys, what="asked for")
                else:
                    policy.handle_write(
                        state, keys, request.updates, what="asked to update"
                    )
            if is_pull:
                response = PullResponse(request.op_id, tuple(keys), values, state.node_id)
                self._reply_to_worker(
                    net, state.node_id, request.op_id, response,
                    message_size(len(keys), values.size),
                )
            elif request.needs_ack:
                ack = PushAck(request.op_id, tuple(keys), state.node_id)
                self._reply_to_worker(
                    net, state.node_id, request.op_id, ack, message_size(len(keys), 0)
                )
            return
        key_to_row = {key: index for index, key in enumerate(keys)}
        with self.node_locks[state.node_id]:
            flags = state.storage.contains_flags(keys)
            owned = [key for key, resident in zip(keys, flags) if resident]
            if owned:
                if is_pull:
                    values = state.read_local_many(owned)
                else:
                    state.write_local_many(
                        owned, select_rows(request.updates, [key_to_row[k] for k in owned])
                    )
        if owned:
            if is_pull:
                response = PullResponse(request.op_id, tuple(owned), values, state.node_id)
                self._reply_to_worker(
                    net, state.node_id, request.op_id, response,
                    message_size(len(owned), values.size),
                )
            elif request.needs_ack:
                ack = PushAck(request.op_id, tuple(owned), state.node_id)
                self._reply_to_worker(
                    net, state.node_id, request.op_id, ack, message_size(len(owned), 0)
                )
        forward_groups: Dict[int, List[int]] = defaultdict(list)
        for key, resident in zip(keys, flags):
            if not resident:
                forward_groups[self._forward_destination(state, key)].append(key)
        for destination, forward_keys in forward_groups.items():
            state.metrics.forwarded_ops += 1
            if request.hops > 0:
                state.metrics.cache_stale += 1
            if is_pull:
                forwarded: Any = PullRequest(
                    request.op_id,
                    tuple(forward_keys),
                    request.requester_node,
                    request.reply_to,
                    request.hops + 1,
                )
                size = message_size(len(forward_keys), 0)
            else:
                updates = copy_rows(request.updates, [key_to_row[k] for k in forward_keys])
                forwarded = PushRequest(
                    request.op_id,
                    tuple(forward_keys),
                    updates,
                    request.requester_node,
                    request.reply_to,
                    request.needs_ack,
                    request.hops + 1,
                )
                size = message_size(len(forward_keys), updates.size)
            self._send_command(net, state.node_id, destination, forwarded, size)

    def _forward_destination(self, state: RealNodeState, key: int) -> int:
        """Best next hop for a key this node does not hold (Figure 5 routing).

        Mirrors the simulator: the home node forwards to the directory owner,
        other nodes forward to the home node — except that a key this node
        recently shipped away chases its transfer via ``last_transfer`` (the
        directory may not name the new owner until it installs).
        """
        last = state.last_transfer.get(key)
        if last is not None and last != state.node_id:
            return last
        home = self.home_node(key)
        if home != state.node_id:
            return home
        with self.directory.lock:
            owner = self.directory.owner_of(key)
        if owner == state.node_id:
            raise RelocationError(
                f"node {state.node_id} is the recorded owner of key {key} "
                "but does not hold it"
            )
        return owner

    def _serve_localize(
        self, state: RealNodeState, net: NetworkStats, request: LocalizeRequest
    ) -> None:
        """Home-node half of the relocation protocol (message 1 handling)."""
        requester = request.requester_node
        with self.directory.lock:
            owners = self.directory.owners_of(request.keys)
        ack_keys: List[int] = []
        owner_groups: Dict[int, List[int]] = defaultdict(list)
        for key, owner in zip(request.keys, owners.tolist()):
            home = self.home_node(key)
            if home != state.node_id:
                raise RelocationError(
                    f"node {state.node_id} received a localize request for "
                    f"key {key}, whose home is node {home}"
                )
            if owner == requester:
                ack_keys.append(key)
            else:
                owner_groups[owner].append(key)
        if ack_keys:
            ack = LocalizeAck(request.op_id, tuple(ack_keys))
            self._reply_to_worker(
                net, state.node_id, request.op_id, ack, message_size(len(ack_keys), 0)
            )
        for owner, owner_keys in owner_groups.items():
            instruction = RelocateInstruction(
                request.op_id, tuple(owner_keys), requester, state.node_id
            )
            if owner == state.node_id:
                self._serve_instruction(state, net, instruction)
            else:
                self._send_command(
                    net, state.node_id, owner, instruction, message_size(len(owner_keys), 0)
                )

    def _serve_instruction(
        self, state: RealNodeState, net: NetworkStats, instruction: RelocateInstruction
    ) -> None:
        """Old-owner half of the protocol (message 2 handling)."""
        with self.node_locks[state.node_id]:
            flags = state.storage.contains_flags(instruction.keys)
            transfer_keys = [key for key, resident in zip(instruction.keys, flags) if resident]
            if transfer_keys:
                values = state.storage.remove_many(transfer_keys)
                removed_at = time.monotonic()
        for key in transfer_keys:
            state.last_transfer[key] = instruction.new_owner
        if transfer_keys:
            transfer = RelocationTransfer(
                instruction.op_id,
                tuple(transfer_keys),
                values,
                state.node_id,
                removed_at,
            )
            size = message_size(len(transfer_keys), values.size)
            if instruction.new_owner == state.node_id:
                self._serve_transfer(state, net, transfer)
            else:
                self._send_command(net, state.node_id, instruction.new_owner, transfer, size)
        # Keys this node no longer holds: the instruction chases the key
        # along its transfer chain (the directory may lag behind).
        chase_groups: Dict[int, List[int]] = defaultdict(list)
        for key, resident in zip(instruction.keys, flags):
            if not resident:
                chase_groups[self._forward_destination(state, key)].append(key)
        for destination, chase_keys in chase_groups.items():
            chased = RelocateInstruction(
                instruction.op_id,
                tuple(chase_keys),
                instruction.new_owner,
                instruction.home_node,
            )
            self._send_command(
                net, state.node_id, destination, chased, message_size(len(chase_keys), 0)
            )

    def _serve_transfer(
        self, state: RealNodeState, net: NetworkStats, transfer: RelocationTransfer
    ) -> None:
        """New-owner half of the protocol (message 3 handling)."""
        keys = list(transfer.keys)
        with self.node_locks[state.node_id]:
            state.storage.insert_many(keys, transfer.values)
        with self.directory.lock:
            self.directory.set_owners(keys, state.node_id)
        for key in keys:
            # A record from this node's previous tenure as owner would
            # misroute future chases; the key lives here again.
            state.last_transfer.pop(key, None)
        metrics = state.metrics
        metrics.relocations += len(keys)
        now = time.monotonic()
        for _ in keys:
            metrics.blocking_time.record(now - transfer.removed_at)
        ack = LocalizeAck(transfer.op_id, transfer.keys)
        self._reply_to_worker(
            net, state.node_id, transfer.op_id, ack, message_size(len(keys), 0)
        )

    # ---------------------------------------------------------- worker process
    def _worker_main(self, client: RealWorkerClient, worker_fn: Callable) -> None:
        state = client.state
        state.metrics = PSMetrics()
        client._net = NetworkStats()
        trace = client._trace
        if trace is not None:
            # The forked copy still holds whatever the parent buffer held;
            # clear it so this child reports only its own span deltas.
            trace.reset()
        try:
            generator = worker_fn(client, client.worker_id)
            value = self._drive(generator)
            self.parent_queue.put(
                ("worker_done", client.worker_id, value, state.metrics, client._net, trace)
            )
        except BaseException:
            self.parent_queue.put(
                ("error", f"worker-{client.worker_id}", traceback.format_exc())
            )

    @staticmethod
    def _drive(generator: Generator) -> Any:
        """Run a trainer generator to completion, realizing compute yields.

        Operations block inside the client calls, so the only values a
        generator may yield on this backend are compute times (seconds),
        which become actual busy-wait CPU time.
        """
        if not hasattr(generator, "send"):
            return generator
        try:
            yielded = generator.send(None)
            while True:
                if isinstance(yielded, (int, float)):
                    _busy_wait(float(yielded))
                    yielded = generator.send(None)
                else:
                    raise ParameterServerError(
                        f"real backend worker yielded {yielded!r}; only "
                        "compute-time yields are supported (operations "
                        "complete synchronously)"
                    )
        except StopIteration as stop:
            return stop.value

    # ------------------------------------------------------------------ owners
    def home_node(self, key: int) -> int:
        """Home node of ``key`` (static, from the partitioner)."""
        return self.partitioner.node_of(key)

    def current_owner(self, key: int) -> int:
        """Node that currently owns ``key`` according to the directory."""
        return self.directory.owner_of(key)

    def current_owners(self, keys: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`current_owner` from the directory."""
        return self.directory.owners_of(keys)

    def parameter(self, key: int) -> np.ndarray:
        """Authoritative current value of ``key`` (between runs)."""
        return self.states[self.current_owner(key)].storage.get(key)

    def all_parameters(self) -> np.ndarray:
        """Full model as an array of shape (num_keys, value_length)."""
        num_keys = self.ps_config.num_keys
        keys = np.arange(num_keys, dtype=np.int64)
        owners = self.directory.snapshot()
        out = np.empty((num_keys, self.ps_config.value_length), dtype=np.float64)
        for node in range(self.cluster.num_nodes):
            node_keys = keys[owners == node]
            if node_keys.size:
                out[node_keys] = self.states[node].storage.get_many(node_keys)
        return out

    # ----------------------------------------------------------------- metrics
    def metrics(self) -> PSMetrics:
        """Cluster-wide aggregate of all per-node metrics."""
        return PSMetrics.aggregate(state.metrics for state in self.states)

    def node_metrics(self, node: int) -> PSMetrics:
        """Metrics of one node."""
        return self.states[node].metrics

    @property
    def simulated_time(self) -> float:
        """Wall-clock seconds since this server was created.

        The name matches the simulated backend so epoch timing code
        (``end - start`` around :meth:`run_workers`) works on both.
        """
        return self.clock.now

    # ----------------------------------------------------------------- cleanup
    def shutdown(self) -> None:
        """Release the shared-memory blocks (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "RealParameterServer":
        return self

    def __exit__(self, exc_type, exc_value, exc_traceback) -> None:
        self.shutdown()
