"""Parameter access locality (PAL) techniques.

The three techniques of §2.2, implemented as reusable helpers that drive the
PS client API (``localize`` / ``pull`` / ``push``):

* :mod:`repro.pal.data_clustering` — exploit structure in the training data so
  that each worker mostly accesses a node-local subset of the parameters,
* :mod:`repro.pal.parameter_blocking` — divide parameters into blocks and
  restrict each worker to one block per subepoch (DSGD-style schedules),
* :mod:`repro.pal.latency_hiding` — prelocalize the parameters of upcoming
  data points so accesses are local by the time they happen.
"""

from repro.pal.data_clustering import (
    access_counts_by_node,
    assign_parameters_by_frequency,
    clustering_localize_plan,
)
from repro.pal.latency_hiding import Prelocalizer
from repro.pal.parameter_blocking import (
    BlockSchedule,
    block_of_key,
    keys_of_block,
)

__all__ = [
    "BlockSchedule",
    "Prelocalizer",
    "access_counts_by_node",
    "assign_parameters_by_frequency",
    "block_of_key",
    "clustering_localize_plan",
    "keys_of_block",
]
