"""Parameter blocking: restrict each worker to one parameter block per subepoch (§2.2.2).

This is the access pattern of DSGD-style matrix factorization [Gemulla et al.,
KDD'11] and related algorithms: the parameter vector is split into as many
blocks as there are workers; an epoch consists of ``num_blocks`` subepochs; in
subepoch ``s`` worker ``w`` works on block ``(w + s) mod num_blocks`` and only
on the part of its data that touches that block.  Between subepochs the blocks
rotate, so communication happens only at subepoch boundaries.

With dynamic parameter allocation the rotation is expressed by a single
``localize`` call per worker per subepoch; with a classic PS every access to
the block goes over the network.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ExperimentError


def keys_of_block(block: int, num_keys: int, num_blocks: int) -> List[int]:
    """Return the keys of ``block`` under a balanced contiguous block split."""
    if not 0 <= block < num_blocks:
        raise ExperimentError(f"block {block} out of range [0, {num_blocks})")
    if num_keys < num_blocks:
        raise ExperimentError(
            f"cannot split {num_keys} keys into {num_blocks} blocks"
        )
    base = num_keys // num_blocks
    remainder = num_keys % num_blocks
    start = block * base + min(block, remainder)
    size = base + (1 if block < remainder else 0)
    return list(range(start, start + size))


def block_of_key(key: int, num_keys: int, num_blocks: int) -> int:
    """Return the block that contains ``key``."""
    if not 0 <= key < num_keys:
        raise ExperimentError(f"key {key} out of range [0, {num_keys})")
    base = num_keys // num_blocks
    remainder = num_keys % num_blocks
    # Blocks 0..remainder-1 have (base + 1) keys each.
    threshold = remainder * (base + 1)
    if key < threshold:
        return key // (base + 1)
    if base == 0:
        raise ExperimentError(
            f"cannot split {num_keys} keys into {num_blocks} blocks"
        )
    return remainder + (key - threshold) // base


class BlockSchedule:
    """The rotation schedule of a parameter-blocking epoch.

    One epoch has ``num_blocks`` subepochs.  In subepoch ``s`` worker ``w`` is
    assigned block ``(w + s) mod num_blocks``; over an epoch every worker sees
    every block exactly once and no two workers share a block in a subepoch
    (when ``num_blocks == num_workers``).
    """

    def __init__(self, num_workers: int, num_blocks: int = 0) -> None:
        if num_workers < 1:
            raise ExperimentError(f"num_workers must be >= 1, got {num_workers}")
        if num_blocks == 0:
            num_blocks = num_workers
        if num_blocks < num_workers:
            raise ExperimentError(
                "num_blocks must be at least num_workers for a conflict-free schedule"
            )
        self.num_workers = num_workers
        self.num_blocks = num_blocks

    @property
    def num_subepochs(self) -> int:
        """Number of subepochs per epoch."""
        return self.num_blocks

    def block_for(self, worker: int, subepoch: int) -> int:
        """Block assigned to ``worker`` in ``subepoch``."""
        if not 0 <= worker < self.num_workers:
            raise ExperimentError(
                f"worker {worker} out of range [0, {self.num_workers})"
            )
        if subepoch < 0:
            raise ExperimentError(f"subepoch must be non-negative, got {subepoch}")
        return (worker + subepoch) % self.num_blocks

    def keys_for(self, worker: int, subepoch: int, num_keys: int) -> List[int]:
        """Keys assigned to ``worker`` in ``subepoch`` for a key space of ``num_keys``."""
        block = self.block_for(worker, subepoch)
        return keys_of_block(block, num_keys, self.num_blocks)

    def assignment_table(self, subepoch: int) -> List[int]:
        """Blocks per worker for one subepoch (index = worker)."""
        return [self.block_for(worker, subepoch) for worker in range(self.num_workers)]

    def verify_conflict_free(self) -> bool:
        """Check that no two workers share a block in any subepoch."""
        for subepoch in range(self.num_subepochs):
            assignment = self.assignment_table(subepoch)
            if len(set(assignment)) != len(assignment):
                return False
        return True
