"""Latency hiding by prelocalization (§2.2.3).

Instead of prefetching (replicating) a parameter — which hides latency but
loses sequential consistency and requires managing the prefetched copies —
Lapse *prelocalizes*: the parameter is relocated to the worker's node before
it is needed, so that the access is local by the time it happens, updates of
other workers remain visible, and local updates need not be written back.

:class:`Prelocalizer` implements the lookahead scheme the paper uses for the
knowledge-graph-embedding and word-vector experiments (Appendix A): while the
worker computes on data point ``i``, the parameters of data point ``i + k``
(``k`` = lookahead, 1 by default) are already being localized.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.ps.base import WorkerClient
from repro.ps.futures import OperationHandle


class Prelocalizer:
    """Sliding-window prelocalization of upcoming parameter accesses.

    Usage pattern inside a worker process::

        prelocalizer = Prelocalizer(client, lookahead=1)
        prelocalizer.prime(keys_of(data[0]))
        for i, point in enumerate(data):
            if i + 1 < len(data):
                prelocalizer.announce(keys_of(data[i + 1]))
            yield from prelocalizer.ready()      # wait for point i's keys
            ...pull/push the keys of point i (now local)...

    ``announce`` issues asynchronous localize calls; ``ready`` waits for the
    localize of the *current* point, which normally completed while the
    previous point was being processed (so the wait is free).
    """

    def __init__(self, client: WorkerClient, lookahead: int = 1) -> None:
        if lookahead < 1:
            raise ExperimentError(f"lookahead must be >= 1, got {lookahead}")
        self.client = client
        self.lookahead = lookahead
        self._window: Deque[Optional[OperationHandle]] = deque()
        self.announced_keys = 0

    def prime(self, *key_sets: Sequence[int]) -> None:
        """Issue localizes for the first data point(s) before the loop starts."""
        for keys in key_sets:
            self.announce(keys)

    def announce(self, keys: Sequence[int]) -> None:
        """Asynchronously localize the keys of an upcoming data point."""
        keys = list(keys)
        if keys:
            handle = self.client.localize_async(keys)
            self.announced_keys += len(keys)
        else:
            handle = None
        self._window.append(handle)

    def ready(self):
        """Wait until the oldest announced localize has completed (generator)."""
        if not self._window:
            raise ExperimentError("ready() called before any announce()/prime()")
        handle = self._window.popleft()
        if handle is not None and not handle.done:
            yield handle.completion_event
        return handle

    @property
    def outstanding(self) -> int:
        """Number of announced-but-not-yet-consumed data points."""
        return len(self._window)


def presample_local_negatives(
    client: WorkerClient,
    candidates: Iterable[int],
    needed: int,
) -> Tuple[List[int], List]:
    """Pick ``needed`` negative-sample keys whose parameters are local.

    Implements the word-vector trick of Appendix A: pre-sampled negative
    candidates that are currently not local (e.g. because of a localization
    conflict) are skipped and the next candidate is tried instead, trading a
    slight change of the sampling distribution for fully local access.

    Returns:
        ``(keys, values)`` — the chosen keys and their (local) values.  Fewer
        than ``needed`` entries are returned if the candidate list is exhausted.
    """
    keys: List[int] = []
    values: List = []
    for key in candidates:
        if len(keys) == needed:
            break
        value = client.pull_if_local(key)
        if value is not None:
            keys.append(key)
            values.append(value)
    return keys, values
