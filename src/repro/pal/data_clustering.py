"""Data clustering: allocate each parameter where it is accessed most (§2.2.1).

Given a partition of the training data over nodes, count how often each node
accesses each parameter and assign every parameter to the node with the
highest access count.  In a PS with dynamic parameter allocation this
assignment is *enacted* simply by having each node localize "its" parameters
once at the beginning of training; in a classic PS it can only be emulated by
key design (which requires knowledge of PS internals, §2.2.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ExperimentError


def access_counts_by_node(
    accesses_per_node: Sequence[Iterable[int]], num_keys: int
) -> np.ndarray:
    """Count parameter accesses per node.

    Args:
        accesses_per_node: For each node, an iterable of the keys its local
            training data accesses (repetitions count).
        num_keys: Size of the key space.

    Returns:
        Array of shape (num_nodes, num_keys) with access counts.
    """
    if num_keys < 1:
        raise ExperimentError(f"num_keys must be >= 1, got {num_keys}")
    counts = np.zeros((len(accesses_per_node), num_keys), dtype=np.int64)
    for node, keys in enumerate(accesses_per_node):
        for key in keys:
            if not 0 <= key < num_keys:
                raise ExperimentError(f"key {key} out of range [0, {num_keys})")
            counts[node, key] += 1
    return counts


def assign_parameters_by_frequency(counts: np.ndarray) -> np.ndarray:
    """Assign each parameter to the node that accesses it most frequently.

    Ties are broken toward the lower node id; parameters never accessed are
    spread round-robin so that no node is overloaded with cold parameters.

    Args:
        counts: Array of shape (num_nodes, num_keys) of access counts.

    Returns:
        Array of length num_keys with the chosen node for every key.
    """
    counts = np.asarray(counts)
    if counts.ndim != 2:
        raise ExperimentError("counts must be a 2-d array (nodes x keys)")
    num_nodes, num_keys = counts.shape
    assignment = np.argmax(counts, axis=0)
    never_accessed = np.flatnonzero(counts.sum(axis=0) == 0)
    assignment[never_accessed] = never_accessed % num_nodes
    return assignment


def clustering_localize_plan(assignment: np.ndarray, node: int) -> List[int]:
    """Keys that ``node`` should localize at the start of training."""
    assignment = np.asarray(assignment)
    if assignment.ndim != 1:
        raise ExperimentError("assignment must be a 1-d array")
    if node < 0:
        raise ExperimentError(f"node must be non-negative, got {node}")
    return np.flatnonzero(assignment == node).tolist()
