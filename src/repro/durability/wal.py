"""Per-node write-ahead log of parameter deltas.

The paper's relocation-only systems keep every parameter in exactly one
node's RAM, so a crash loses state.  Because PS updates are *additive* (SGD
pushes are `+=` of float64 rows), the mutation history of a store can be
captured as an LSN-prefixed stream of ``(key, delta)`` batches and replayed
idempotently onto any checkpoint whose covered LSN is a prefix of the
stream: ``checkpoint(lsn) + replay(wal[lsn:])`` reconverges bit-identically
to the uninterrupted store, for any crash point at or after the checkpoint.

Three pieces live here:

* :class:`DurabilityConfig` — the opt-in switch.  When no config is passed
  to the parameter server, **nothing** in this module is imported on the hot
  path and the stores stay plain :class:`~repro.ps.storage.DenseStorage` /
  :class:`~repro.ps.storage.SparseStorage`; durability off is structurally
  zero-overhead.
* :class:`DeltaWAL` — one append-only record list per node.  All node WALs
  share one :class:`LSNClock`, so LSNs form a cluster-wide total order and a
  record written by node A can be ordered against node B's checkpoint (this
  is what lets crash recovery find the value of a key whose ownership was in
  flight between two nodes at crash time).
* :class:`LoggedStorage` — a transparent proxy wrapped around a node's
  parameter store.  Every mutator delegates to the inner store first (so a
  failed check-then-apply batch raises *before* anything is logged) and then
  appends one WAL record.  Wrapping the store — rather than instrumenting
  individual PS call sites — catches every mutation path with one hook:
  worker writes (`write_local_many`/`row_add`), server write handlers,
  relocation transfers (insert/remove), and replica installs.

Record kinds: ``delta`` (cumulative `+=`), ``insert``, ``set``, and
``remove``.  ``remove`` records carry the *removed values*: when a
relocation transfer is lost with a crashing destination node, the old
owner's ``remove`` record is the only durable copy of the key, and recovery
restores from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DurabilityError

#: WAL record kinds.
WAL_DELTA = "delta"
WAL_INSERT = "insert"
WAL_SET = "set"
WAL_REMOVE = "remove"

WAL_KINDS = (WAL_DELTA, WAL_INSERT, WAL_SET, WAL_REMOVE)

#: Simulated serialized size of a WAL record header (LSN, kind, key count).
RECORD_HEADER_BYTES = 16
#: Simulated serialized size of one key and of one float64 value element.
KEY_BYTES = 8
VALUE_BYTES = 8


@dataclass(frozen=True)
class DurabilityConfig:
    """Configuration of the durability subsystem.

    Attributes:
        enabled: Master switch.  A disabled config behaves exactly like
            passing no config at all: the parameter server installs no
            manager and the stores stay unwrapped.
        checkpoint_interval: Simulated seconds between per-node checkpoints.
            Checkpoints are taken lazily — on the first WAL append at or
            after the due time — so enabling durability schedules no kernel
            events and cannot perturb simulated timings.  ``0`` disables
            periodic checkpoints (explicit ``checkpoint_node``/
            ``checkpoint_all`` calls still work).
        truncate_on_checkpoint: Drop WAL records covered by a new checkpoint.
            Off by default: retained ``remove`` records are what recovery
            uses for keys whose relocation transfer was in flight at crash
            time, so truncation trades that coverage for memory.
    """

    enabled: bool = True
    checkpoint_interval: float = 0.05
    truncate_on_checkpoint: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 0:
            raise DurabilityError(
                f"checkpoint_interval must be >= 0, got {self.checkpoint_interval}"
            )


class LSNClock:
    """Monotonic log-sequence-number source shared by all node WALs."""

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last = 0

    def next(self) -> int:
        """Return the next LSN (first LSN handed out is 1)."""
        self._last += 1
        return self._last

    @property
    def last(self) -> int:
        """The most recently handed-out LSN (0 before any append)."""
        return self._last


@dataclass
class WALRecord:
    """One logged mutation batch: ``kind`` applied to ``keys``/``values``.

    ``values`` holds one float64 row per key (the delta for ``delta``
    records, the stored value for ``insert``/``set``, the *removed* value
    for ``remove``).
    """

    __slots__ = ("lsn", "kind", "keys", "values")

    lsn: int
    kind: str
    keys: Tuple[int, ...]
    values: np.ndarray

    @property
    def nbytes(self) -> int:
        """Simulated serialized size of this record."""
        return (
            RECORD_HEADER_BYTES
            + KEY_BYTES * len(self.keys)
            + VALUE_BYTES * int(self.values.size)
        )


class DeltaWAL:
    """Append-only WAL of one node's parameter-store mutations.

    Records are kept in memory (the simulation does not model disk I/O —
    appends are durable the instant they return, which is the strongest
    possible write-ahead discipline and the baseline the fault-injection
    tests measure against).  ``after_append`` is an optional callback fired
    after every append; the durability manager uses it to trigger lazy
    simulated-time checkpoints without scheduling kernel events.
    """

    __slots__ = (
        "node",
        "clock",
        "metrics",
        "records",
        "after_append",
        "_last_lsn",
        "shard_keys",
        "_order_key_hook",
    )

    def __init__(self, node: int = 0, clock: Optional[LSNClock] = None, metrics=None):
        self.node = node
        self.clock = clock if clock is not None else LSNClock()
        self.metrics = metrics
        self.records: List[WALRecord] = []
        self.after_append: Optional[Callable[[], None]] = None
        self._last_lsn = 0
        #: Parallel-engine capture (``enable_shard_capture``): one global
        #: order key per post-fork append, parallel to ``records``.
        self.shard_keys: Optional[List[Tuple]] = None
        self._order_key_hook: Optional[Callable[[], Tuple]] = None

    def enable_shard_capture(self, order_key_hook: Callable[[], Tuple]) -> None:
        """Capture a global order key alongside every append (shard mode).

        Inside a forked shard the LSN clock advances independently, so LSNs
        drawn during the window are *provisional* (shard-relative).  The
        captured keys — :meth:`Simulator.wal_order_key` tuples
        ``(time, executing-event lineage, local seq)`` — totally order
        appends across shards exactly as the sequential engine would have
        interleaved them, letting the coordinator stitch all shards' records
        into the cluster order and rewrite provisional LSNs at window merge.
        """
        self._order_key_hook = order_key_hook
        self.shard_keys = []

    @property
    def last_lsn(self) -> int:
        """LSN of the last record this WAL appended (survives truncation)."""
        return self._last_lsn

    def append(self, kind: str, keys: Sequence[int], values: np.ndarray) -> WALRecord:
        """Append one record and return it.

        ``values`` must already be a detached float64 array of shape
        ``(len(keys), d)`` — :class:`LoggedStorage` copies before logging so
        records never alias caller buffers.
        """
        if kind not in WAL_KINDS:
            raise DurabilityError(f"unknown WAL record kind {kind!r}")
        record = WALRecord(
            lsn=self.clock.next(), kind=kind, keys=tuple(keys), values=values
        )
        self.records.append(record)
        if self._order_key_hook is not None:
            self.shard_keys.append(self._order_key_hook())
        self._last_lsn = record.lsn
        if self.metrics is not None:
            self.metrics.wal_appends += 1
            self.metrics.wal_bytes += record.nbytes
        if self.after_append is not None:
            self.after_append()
        return record

    def records_since(self, lsn: int) -> List[WALRecord]:
        """Records with an LSN strictly greater than ``lsn``, in log order."""
        records = self.records
        # Records are appended in LSN order; bisect for the replay suffix.
        lo, hi = 0, len(records)
        while lo < hi:
            mid = (lo + hi) // 2
            if records[mid].lsn <= lsn:
                lo = mid + 1
            else:
                hi = mid
        return records[lo:]

    def truncate_to(self, lsn: int) -> int:
        """Drop records with LSN <= ``lsn``; returns how many were dropped."""
        kept = self.records_since(lsn)
        dropped = len(self.records) - len(kept)
        self.records = kept
        return dropped


def _as_logged_rows(values, count: int, value_length: int) -> np.ndarray:
    """Detached float64 ``(count, d)`` copy of a value batch for logging."""
    rows = np.array(values, dtype=np.float64, copy=True)
    if rows.ndim == 1:
        rows = rows.reshape(count, value_length)
    return rows


def _as_key_tuple(keys) -> Tuple[int, ...]:
    if type(keys) is np.ndarray:
        return tuple(keys.tolist())
    return tuple(int(key) for key in keys)


class LoggedStorage:
    """Write-ahead-logging proxy around a node's parameter store.

    Reads delegate straight through.  Mutators delegate first — inheriting
    the inner store's check-then-apply batch semantics, so a rejected batch
    logs nothing — then append exactly one WAL record.  The proxy is
    API-compatible with :class:`~repro.ps.storage.ParameterStorage`
    (including the unchecked ``row_*`` fast path used by fused worker
    steps), so every caller of the store is captured without knowing the
    log exists.
    """

    __slots__ = ("inner", "wal", "num_keys", "value_length")

    def __init__(self, inner, wal: DeltaWAL):
        self.inner = inner
        self.wal = wal
        self.num_keys = inner.num_keys
        self.value_length = inner.value_length

    # ------------------------------------------------------------------ reads
    def contains(self, key: int) -> bool:
        return self.inner.contains(key)

    def __contains__(self, key: int) -> bool:
        return self.inner.contains(key)

    def has_row(self, key: int) -> bool:
        return self.inner.has_row(key)

    def row_copy(self, key: int) -> np.ndarray:
        return self.inner.row_copy(key)

    def get(self, key: int) -> np.ndarray:
        return self.inner.get(key)

    def keys(self):
        return self.inner.keys()

    def __len__(self) -> int:
        return len(self.inner)

    def contains_many(self, keys) -> np.ndarray:
        return self.inner.contains_many(keys)

    def contains_flags(self, keys) -> list:
        return self.inner.contains_flags(keys)

    def get_many(self, keys) -> np.ndarray:
        return self.inner.get_many(keys)

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.inner.snapshot()

    # --------------------------------------------------------------- mutators
    def add(self, key: int, update) -> None:
        self.inner.add(key, update)
        self.wal.append(
            WAL_DELTA,
            (int(key),),
            _as_logged_rows(update, 1, self.value_length),
        )

    def row_add(self, key: int, update) -> None:
        self.inner.row_add(key, update)
        self.wal.append(
            WAL_DELTA,
            (int(key),),
            _as_logged_rows(update, 1, self.value_length),
        )

    def add_many(self, keys, updates) -> None:
        self.inner.add_many(keys, updates)
        key_tuple = _as_key_tuple(keys)
        self.wal.append(
            WAL_DELTA,
            key_tuple,
            _as_logged_rows(updates, len(key_tuple), self.value_length),
        )

    def set(self, key: int, value) -> None:
        self.inner.set(key, value)
        self.wal.append(
            WAL_SET,
            (int(key),),
            _as_logged_rows(value, 1, self.value_length),
        )

    def set_many(self, keys, values) -> None:
        self.inner.set_many(keys, values)
        key_tuple = _as_key_tuple(keys)
        self.wal.append(
            WAL_SET,
            key_tuple,
            _as_logged_rows(values, len(key_tuple), self.value_length),
        )

    def insert(self, key: int, value) -> None:
        self.inner.insert(key, value)
        self.wal.append(
            WAL_INSERT,
            (int(key),),
            _as_logged_rows(value, 1, self.value_length),
        )

    def insert_many(self, keys, values) -> None:
        self.inner.insert_many(keys, values)
        key_tuple = _as_key_tuple(keys)
        self.wal.append(
            WAL_INSERT,
            key_tuple,
            _as_logged_rows(values, len(key_tuple), self.value_length),
        )

    def remove(self, key: int) -> np.ndarray:
        value = self.inner.remove(key)
        # The removed value rides in the record: after a relocation hands a
        # key away, this is the last durable copy the old owner holds.
        self.wal.append(
            WAL_REMOVE,
            (int(key),),
            _as_logged_rows(value, 1, self.value_length),
        )
        return value

    def remove_many(self, keys) -> np.ndarray:
        values = self.inner.remove_many(keys)
        key_tuple = _as_key_tuple(keys)
        self.wal.append(
            WAL_REMOVE,
            key_tuple,
            _as_logged_rows(values, len(key_tuple), self.value_length),
        )
        return values
