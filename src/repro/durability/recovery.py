"""Crash-consistent recovery: checkpoint restore + WAL-suffix replay.

:class:`DurabilityManager` is the per-parameter-server owner of the
durability state: one :class:`~repro.durability.wal.DeltaWAL` and one
:class:`~repro.durability.checkpoint.CheckpointStore` per node, all WALs
sharing one cluster-wide :class:`~repro.durability.wal.LSNClock`.  It wraps
every node's parameter store in a
:class:`~repro.durability.wal.LoggedStorage` proxy at install time and
takes a baseline checkpoint (LSN 0 covers the initial parameter insert of
each node, which is itself logged — either order recovers identically
because inserts are replayed by overwrite).

Recovery is a *read* of the durable state, consumed by
:meth:`~repro.cluster.rebalancer.Rebalancer.recover_after_failure`: restore
the failed node's latest checkpoint as a key -> row dict, replay its WAL
suffix onto it (:func:`replay_records`), and hand the result to the same
``RecoveryInstall`` path that replica recovery uses — replica sync and
crash recovery are two consumers of one log.  For keys whose relocation
transfer was in flight at crash time (the home table already names the dead
node as owner, but the dead node's log never saw the insert), the old
owner's ``remove`` record is the last durable copy;
:meth:`DurabilityManager.last_removed_value` finds it by global LSN order.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import DurabilityError

from .checkpoint import Checkpoint, CheckpointStore, take_checkpoint
from .wal import (
    WAL_DELTA,
    WAL_INSERT,
    WAL_REMOVE,
    WAL_SET,
    DeltaWAL,
    DurabilityConfig,
    LoggedStorage,
    LSNClock,
)


def replay_records(state: Dict[int, np.ndarray], records) -> Tuple[int, int]:
    """Apply WAL records, in log order, onto a key -> value-row dict.

    Returns ``(records_applied, delta_rows_applied)``.  Replaying a
    ``delta`` row is the same float64 ``+=`` the original store performed —
    batch mutators on both store variants apply duplicate keys in batch
    order (``np.add.at`` / sequential loops), so per key the replayed
    addition sequence is identical to the live one and the result is
    bit-identical.
    """
    applied = 0
    delta_rows = 0
    for record in records:
        kind = record.kind
        values = record.values
        if kind == WAL_DELTA:
            for index, key in enumerate(record.keys):
                row = state.get(key)
                if row is None:
                    raise DurabilityError(
                        f"WAL replay: delta for key {key} (lsn {record.lsn}) "
                        "targets a key absent from the restored state"
                    )
                row += values[index]
                delta_rows += 1
        elif kind in (WAL_INSERT, WAL_SET):
            for index, key in enumerate(record.keys):
                state[key] = values[index].copy()
        elif kind == WAL_REMOVE:
            for key in record.keys:
                state.pop(key, None)
        else:  # pragma: no cover - append() validates kinds
            raise DurabilityError(f"unknown WAL record kind {kind!r}")
        applied += 1
    return applied, delta_rows


class DurabilityManager:
    """Per-PS owner of WALs, checkpoints, and the recovery read path."""

    def __init__(self, ps, config: DurabilityConfig) -> None:
        self.ps = ps
        self.config = config
        self.clock = LSNClock()
        self.wals: Dict[int, DeltaWAL] = {}
        self.checkpoints: Dict[int, CheckpointStore] = {}
        self._next_checkpoint_at: Dict[int, float] = {}
        for state in ps.states:
            self._install(state)
        # Baseline checkpoints cover the (logged) initial parameter inserts,
        # so recovery always has a checkpoint to restore from.
        self.checkpoint_all()

    # ------------------------------------------------------------ installation
    def _install(self, state) -> None:
        node = state.node_id
        wal = DeltaWAL(node=node, clock=self.clock, metrics=state.metrics)
        if self.config.checkpoint_interval > 0:
            # Lazy trigger: checked on append, never via kernel events, so
            # durability cannot perturb simulated timings.
            wal.after_append = lambda node=node: self._maybe_checkpoint(node)
        self.wals[node] = wal
        self.checkpoints[node] = CheckpointStore(node)
        state.storage = LoggedStorage(state.storage, wal)

    def wrap_fresh_storage(self, node: int, storage) -> LoggedStorage:
        """Re-wrap a freshly wiped store in the node's existing WAL.

        Used by the elastic runtime when it models a crash: the volatile
        store is lost, the durable log is not.
        """
        return LoggedStorage(storage, self.wals[node])

    # ------------------------------------------------------------- checkpoints
    def _maybe_checkpoint(self, node: int) -> None:
        due = self._next_checkpoint_at.get(node)
        if due is not None and self.ps.sim.now >= due:
            self.checkpoint_node(node)

    def checkpoint_node(self, node: int) -> Checkpoint:
        """Take a synchronous checkpoint of ``node``'s store now."""
        state = self.ps.states[node]
        wal = self.wals[node]
        checkpoint = take_checkpoint(
            state.storage, node=node, lsn=wal.last_lsn, now=self.ps.sim.now
        )
        self.checkpoints[node].add(checkpoint)
        state.metrics.checkpoints += 1
        state.metrics.checkpoint_bytes += checkpoint.nbytes
        if self.config.truncate_on_checkpoint:
            wal.truncate_to(checkpoint.lsn)
        if self.config.checkpoint_interval > 0:
            self._next_checkpoint_at[node] = (
                self.ps.sim.now + self.config.checkpoint_interval
            )
        return checkpoint

    def checkpoint_all(self) -> None:
        for state in self.ps.states:
            self.checkpoint_node(state.node_id)

    # ---------------------------------------------------------------- recovery
    def recovered_state(self, node: int) -> Tuple[Dict[int, np.ndarray], int]:
        """Durable state of ``node``: latest checkpoint + WAL-suffix replay.

        Returns ``(key -> value row, replayed delta rows)`` and records the
        replay volume in the node's ``replayed_deltas`` metric.
        """
        checkpoint = self.checkpoints[node].latest
        if checkpoint is None:
            raise DurabilityError(f"node {node} has no checkpoint to restore")
        state = checkpoint.as_state()
        suffix = self.wals[node].records_since(checkpoint.lsn)
        _, delta_rows = replay_records(state, suffix)
        self.ps.states[node].metrics.replayed_deltas += delta_rows
        return state, delta_rows

    def last_removed_value(self, key: int) -> Optional[np.ndarray]:
        """Value carried by the globally newest ``remove`` record for ``key``.

        ``None`` if no retained ``remove`` record mentions the key.  Only
        consulted for keys absent from every durable owned-state, i.e. keys
        whose relocation transfer vanished with a crashing destination — the
        shared LSN clock makes "newest across all node logs" well defined.
        """
        best_lsn = -1
        best_value: Optional[np.ndarray] = None
        for wal in self.wals.values():
            for record in wal.records:
                if record.kind != WAL_REMOVE or record.lsn <= best_lsn:
                    continue
                for index, record_key in enumerate(record.keys):
                    if record_key == key:
                        best_lsn = record.lsn
                        best_value = record.values[index].copy()
                        break
        return best_value

    def reset_after_crash(self, node: int) -> None:
        """Seal a crashed node's durable history after recovery consumed it.

        Takes a fresh (empty-store) checkpoint at the node's current last
        LSN so pre-crash records can never replay into the node's post-rejoin
        life — the recovered keys now live, durably, in their new owners'
        logs.
        """
        self._next_checkpoint_at.pop(node, None)
        self.checkpoint_node(node)
