"""Per-node checkpoints of the owned parameter slabs.

A checkpoint is a detached ``(keys, values)`` snapshot of one node's store
plus the LSN it covers: every mutation with LSN <= ``lsn`` is reflected in
the snapshot, every later mutation is not.  That invariant is what makes
recovery exact — ``restore(checkpoint) + replay(wal.records_since(lsn))``
reproduces the store bit-identically, because replaying a ``delta`` record
performs the same float64 row addition the original ``add`` did, in the
same per-key order (see ``docs/architecture.md``, Durability subsystem).

Checkpoints are triggered on simulated time but taken *synchronously* at
zero simulated cost (the lazy trigger lives in the durability manager):
enabling durability must not schedule kernel events, so that a run with
durability on is simulated-time-identical to the same run with it off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .wal import KEY_BYTES, RECORD_HEADER_BYTES, VALUE_BYTES


@dataclass
class Checkpoint:
    """Snapshot of one node's store as of ``lsn``, taken at ``taken_at``."""

    __slots__ = ("node", "lsn", "taken_at", "keys", "values")

    node: int
    lsn: int
    taken_at: float
    keys: np.ndarray
    values: np.ndarray

    @property
    def nbytes(self) -> int:
        """Simulated serialized size of this checkpoint."""
        return (
            RECORD_HEADER_BYTES
            + KEY_BYTES * int(self.keys.size)
            + VALUE_BYTES * int(self.values.size)
        )

    def as_state(self) -> Dict[int, np.ndarray]:
        """Expand into a key -> detached value-row dict (replay substrate)."""
        return {
            int(key): self.values[index].copy()
            for index, key in enumerate(self.keys.tolist())
        }


def take_checkpoint(storage, node: int, lsn: int, now: float) -> Checkpoint:
    """Snapshot ``storage`` (any ParameterStorage-compatible store)."""
    keys, values = storage.snapshot()
    return Checkpoint(node=node, lsn=lsn, taken_at=now, keys=keys, values=values)


class CheckpointStore:
    """Retained checkpoints of one node, newest last.

    Only the latest checkpoint is needed for recovery; earlier ones are kept
    so tests can restore from *any* checkpoint and assert that replaying the
    matching WAL suffix reconverges to the same state.
    """

    __slots__ = ("node", "checkpoints")

    def __init__(self, node: int) -> None:
        self.node = node
        self.checkpoints: List[Checkpoint] = []

    def add(self, checkpoint: Checkpoint) -> None:
        self.checkpoints.append(checkpoint)

    @property
    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def __len__(self) -> int:
        return len(self.checkpoints)
