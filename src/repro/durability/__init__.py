"""Durability subsystem: delta WAL, checkpoints, crash-consistent recovery.

See ``docs/architecture.md`` (Durability subsystem) for the design: an
LSN-prefixed per-node write-ahead log of parameter deltas, periodic
simulated-time checkpoints, and a recovery path that restores a failed
node's checkpoint and replays the WAL suffix — feeding the same
``RecoveryInstall`` machinery the replication subsystem uses, so replica
sync and crash recovery are two consumers of one log.
"""

from .checkpoint import Checkpoint, CheckpointStore, take_checkpoint
from .recovery import DurabilityManager, replay_records
from .wal import (
    WAL_DELTA,
    WAL_INSERT,
    WAL_KINDS,
    WAL_REMOVE,
    WAL_SET,
    DeltaWAL,
    DurabilityConfig,
    LoggedStorage,
    LSNClock,
    WALRecord,
)

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "DeltaWAL",
    "DurabilityConfig",
    "DurabilityManager",
    "LoggedStorage",
    "LSNClock",
    "WALRecord",
    "WAL_DELTA",
    "WAL_INSERT",
    "WAL_KINDS",
    "WAL_REMOVE",
    "WAL_SET",
    "replay_records",
    "take_checkpoint",
]
