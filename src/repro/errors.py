"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the discrete-event simulation enters an invalid state."""


class ProcessError(SimulationError):
    """Raised when a simulation process fails or is used incorrectly."""


class NetworkError(SimulationError):
    """Raised for invalid network operations (unknown nodes, bad channels)."""


class ParameterServerError(ReproError):
    """Base class for parameter-server level errors."""


class UnknownKeyError(ParameterServerError, KeyError):
    """Raised when an operation references a key outside the key space."""


class StorageError(ParameterServerError):
    """Raised for invalid storage operations (shape mismatches, missing keys)."""


class PartitionError(ParameterServerError):
    """Raised when a partitioner is configured or queried incorrectly."""


class RelocationError(ParameterServerError):
    """Raised when the relocation protocol enters an invalid state."""


class UnsupportedOperationError(ParameterServerError):
    """Raised when a PS variant does not support a requested primitive.

    For example, the classic parameter server raises this error for
    ``localize`` because it allocates parameters statically.
    """


class ConsistencyViolation(ReproError):
    """Raised (optionally) by consistency checkers when a history violates a model."""


class DataGenerationError(ReproError):
    """Raised when a synthetic dataset cannot be generated from the given spec."""


class ExperimentError(ReproError):
    """Raised when an experiment scenario is misconfigured."""


class DurabilityError(ReproError):
    """Raised for invalid durability operations (WAL replay onto a missing
    key, checkpoint/LSN mismatches, misconfigured :class:`DurabilityConfig`)."""


class ClusterError(ReproError):
    """Raised for invalid elastic-cluster operations (membership, schedules,
    rebalancing) — e.g. an illegal lifecycle transition or an event targeting
    a node outside the cluster's capacity."""


class ObservabilityError(ReproError):
    """Raised for invalid tracing/telemetry operations (misconfigured
    :class:`~repro.obs.TraceConfig`, malformed trace files, schema-validation
    failures in the Chrome trace-event exporter)."""
