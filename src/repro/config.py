"""Cluster and cost-model configuration.

The original Lapse evaluation ran on a physical cluster (8 nodes, 4 worker
threads per node, 10 GBit Ethernet).  This reproduction replaces the physical
cluster with a discrete-event simulation, and the :class:`CostModel` collects
every latency and throughput constant that the simulation charges for an
action.  The defaults are chosen to match the relative magnitudes reported in
the paper:

* shared-memory access to a local parameter is orders of magnitude cheaper
  than a network round trip (paper §3.3: up to 6x cheaper than local queues,
  71-91x cheaper than PS-Lite's inter-process access, §4.2),
* a network message costs a fixed latency plus a size-dependent transfer time
  (10 GBit Ethernet in the paper),
* server-side handling of a request costs a small processing time.

Absolute values are not meant to match the paper's testbed; the *ratios* are,
because they determine the shape of the scaling curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ExperimentError

#: Bytes per float32 parameter entry used for message-size accounting.
BYTES_PER_VALUE = 4
#: Bytes per key identifier used for message-size accounting.
BYTES_PER_KEY = 8
#: Fixed per-message envelope overhead in bytes (headers, framing).
MESSAGE_OVERHEAD_BYTES = 64


@dataclass(frozen=True)
class CostModel:
    """Latency/throughput constants charged by the simulation.

    All times are in (simulated) seconds, sizes in bytes.

    Attributes:
        network_latency: One-way propagation + protocol latency per message.
        network_bandwidth: Link bandwidth in bytes per second; transfer time of
            a message is ``size / network_bandwidth`` on top of the latency.
        sharedmem_access_latency: Cost of accessing a local parameter directly
            through shared memory (Lapse-style fast local access).
        ipc_access_latency: Cost of accessing a *local* parameter through
            inter-process communication with the local server (PS-Lite style).
            The paper reports this to be 71-91x slower than shared memory.
        interthread_access_latency: Cost of accessing a local parameter through
            inter-thread queues (Petuum style); the paper reports shared-memory
            access to be up to 6x faster than this.
        server_processing_time: Time the server thread spends handling one
            request message (lookup, apply update, build response).
        latch_acquire_time: Cost of acquiring a latch for a local access.
        relocation_processing_time: Server-side handling cost for each step of
            the relocation protocol.
        localize_issue_time: Worker-side cost of issuing a localize call.
    """

    network_latency: float = 150e-6
    network_bandwidth: float = 10e9 / 8.0
    sharedmem_access_latency: float = 0.25e-6
    ipc_access_latency: float = 8e-6
    interthread_access_latency: float = 1.5e-6
    server_processing_time: float = 1.5e-6
    latch_acquire_time: float = 0.05e-6
    relocation_processing_time: float = 1.5e-6
    localize_issue_time: float = 0.5e-6

    def message_time(self, size_bytes: float) -> float:
        """Return the one-way time for a message of ``size_bytes`` bytes."""
        if size_bytes < 0:
            raise ExperimentError(f"message size must be non-negative, got {size_bytes}")
        return self.network_latency + size_bytes / self.network_bandwidth

    def local_access_time(self, *, shared_memory: bool) -> float:
        """Return the cost of one local parameter access."""
        if shared_memory:
            return self.sharedmem_access_latency + self.latch_acquire_time
        return self.ipc_access_latency

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with all latency constants multiplied by ``factor``.

        Bandwidth is divided by the factor so that transfer times also scale.
        Useful for sensitivity analyses on the communication-to-computation
        ratio.
        """
        if factor <= 0:
            raise ExperimentError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            network_latency=self.network_latency * factor,
            network_bandwidth=self.network_bandwidth / factor,
            sharedmem_access_latency=self.sharedmem_access_latency * factor,
            ipc_access_latency=self.ipc_access_latency * factor,
            interthread_access_latency=self.interthread_access_latency * factor,
            server_processing_time=self.server_processing_time * factor,
            latch_acquire_time=self.latch_acquire_time * factor,
            relocation_processing_time=self.relocation_processing_time * factor,
            localize_issue_time=self.localize_issue_time * factor,
        )


def message_size(num_keys: int, num_values: int) -> int:
    """Estimate the wire size of a PS message.

    Args:
        num_keys: Number of key identifiers carried by the message.
        num_values: Total number of scalar parameter values carried.

    Returns:
        Estimated size in bytes including the fixed envelope overhead.
    """
    if num_keys < 0 or num_values < 0:
        raise ExperimentError("message_size arguments must be non-negative")
    return MESSAGE_OVERHEAD_BYTES + num_keys * BYTES_PER_KEY + num_values * BYTES_PER_VALUE


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster.

    Attributes:
        num_nodes: Number of machines. The paper uses 1, 2, 4, and 8.
        workers_per_node: Worker threads per node. The paper uses 4.
        cost_model: The :class:`CostModel` used by the simulation.
        seed: Base random seed; every node/worker derives its own stream.
    """

    num_nodes: int = 1
    workers_per_node: int = 4
    cost_model: CostModel = field(default_factory=CostModel)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ExperimentError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.workers_per_node < 1:
            raise ExperimentError(
                f"workers_per_node must be >= 1, got {self.workers_per_node}"
            )

    @property
    def total_workers(self) -> int:
        """Total number of worker threads in the cluster."""
        return self.num_nodes * self.workers_per_node

    def worker_id(self, node: int, local_worker: int) -> int:
        """Return the global worker id of ``local_worker`` on ``node``."""
        self._check_node(node)
        if not 0 <= local_worker < self.workers_per_node:
            raise ExperimentError(
                f"local worker {local_worker} out of range [0, {self.workers_per_node})"
            )
        return node * self.workers_per_node + local_worker

    def node_of_worker(self, worker_id: int) -> int:
        """Return the node that hosts global worker ``worker_id``."""
        if not 0 <= worker_id < self.total_workers:
            raise ExperimentError(
                f"worker id {worker_id} out of range [0, {self.total_workers})"
            )
        return worker_id // self.workers_per_node

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ExperimentError(f"node {node} out of range [0, {self.num_nodes})")


@dataclass(frozen=True)
class ParameterServerConfig:
    """Configuration shared by every PS variant.

    Attributes:
        num_keys: Size of the key space (keys are ``0 .. num_keys - 1``).
        value_length: Number of float32 entries stored per key.
        dense_storage: Use dense (array-backed) local stores if True, sparse
            (dict-backed) stores otherwise.
        shared_memory_local_access: Whether local parameter accesses bypass the
            server thread (Lapse-style fast local access).
        location_caches: Enable location caches (Lapse only).
        message_grouping: Group per-destination messages of multi-key
            operations (Lapse §3.7).
        num_latches: Number of latches guarding local parameter access.
        staleness_bound: Staleness bound for the stale PS (ignored elsewhere).
        stale_server_push: Use server-based synchronization (SSPPush) in the
            stale PS instead of client-based synchronization (SSP).
        replica_sync_trigger: When the replication-based PS propagates
            accumulated updates: ``"time"`` (a per-node timer fires every
            ``replica_sync_interval`` simulated seconds while there are
            unsynchronized updates) or ``"clock"`` (a node synchronizes
            whenever one of its workers advances its clock).
        replica_sync_interval: Period of the time-triggered synchronization
            loop in simulated seconds (replica PS only).
        hot_key_policy: Hot-key replication policy kind (replica PS only):
            ``"access_count"``, ``"explicit"``, or ``"none"``
            (see :func:`repro.ps.partition.make_hot_key_policy`).
        hot_key_threshold: Access count at which a key becomes hot under the
            ``access_count`` policy.
        hot_keys: Fixed hot set for the ``explicit`` policy.
    """

    num_keys: int = 1024
    value_length: int = 8
    dense_storage: bool = True
    shared_memory_local_access: bool = True
    location_caches: bool = False
    message_grouping: bool = True
    num_latches: int = 1000
    staleness_bound: int = 1
    stale_server_push: bool = False
    replica_sync_trigger: str = "time"
    replica_sync_interval: float = 500e-6
    hot_key_policy: str = "access_count"
    hot_key_threshold: int = 1
    hot_keys: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.num_keys < 1:
            raise ExperimentError(f"num_keys must be >= 1, got {self.num_keys}")
        if self.value_length < 1:
            raise ExperimentError(f"value_length must be >= 1, got {self.value_length}")
        if self.num_latches < 1:
            raise ExperimentError(f"num_latches must be >= 1, got {self.num_latches}")
        if self.staleness_bound < 0:
            raise ExperimentError(
                f"staleness_bound must be >= 0, got {self.staleness_bound}"
            )
        if self.replica_sync_trigger not in ("time", "clock"):
            raise ExperimentError(
                "replica_sync_trigger must be 'time' or 'clock', "
                f"got {self.replica_sync_trigger!r}"
            )
        if self.replica_sync_interval <= 0:
            raise ExperimentError(
                f"replica_sync_interval must be > 0, got {self.replica_sync_interval}"
            )
        if self.hot_key_policy not in ("access_count", "explicit", "none"):
            raise ExperimentError(
                "hot_key_policy must be 'access_count', 'explicit', or 'none', "
                f"got {self.hot_key_policy!r}"
            )
        if self.hot_key_threshold < 1:
            raise ExperimentError(
                f"hot_key_threshold must be >= 1, got {self.hot_key_threshold}"
            )
        if self.hot_key_policy == "explicit" and self.hot_keys is None:
            raise ExperimentError("hot_key_policy 'explicit' requires hot_keys")
        if self.hot_keys is not None:
            for key in self.hot_keys:
                if not 0 <= key < self.num_keys:
                    raise ExperimentError(
                        f"hot key {key} out of range [0, {self.num_keys})"
                    )


@dataclass(frozen=True)
class WorkloadConfig:
    """Compute-cost knobs for a simulated ML workload.

    Attributes:
        compute_time_per_datapoint: Simulated seconds of pure computation a
            worker spends on one data point (excluding parameter access).
        datapoints_per_worker: Number of data points each worker processes per
            epoch when the workload is synthetic.
    """

    compute_time_per_datapoint: float = 20e-6
    datapoints_per_worker: int = 1000

    def __post_init__(self) -> None:
        if self.compute_time_per_datapoint < 0:
            raise ExperimentError("compute_time_per_datapoint must be non-negative")
        if self.datapoints_per_worker < 1:
            raise ExperimentError("datapoints_per_worker must be >= 1")


#: The parallelism levels used throughout the paper's evaluation (nodes x 4 threads).
PAPER_PARALLELISM_LEVELS = (1, 2, 4, 8)


def derive_seed(base_seed: int, *components: int) -> int:
    """Derive a deterministic sub-seed from a base seed and integer components.

    This keeps every simulated node/worker on an independent but reproducible
    random stream.
    """
    seed = base_seed & 0xFFFFFFFF
    for component in components:
        seed = (seed * 1_000_003 + (component & 0xFFFFFFFF) + 0x9E3779B9) & 0xFFFFFFFF
    return seed
