"""Cluster membership: node lifecycle states and transitions.

A static parameter server fixes its node set at construction; the elastic
cluster runtime lets it change at run time.  :class:`Membership` is the
control-plane record of that change: every node of the cluster's *capacity*
(``ClusterConfig.num_nodes``) is in exactly one lifecycle state, and the
runtime drives it through the transitions below.

::

    left ──join──▶ joining ──rebalance done──▶ active ──drain──▶ draining
                      │  ▲                        │                 │
                      └──│───fail──▶  failed  ◀───┴──────fail───────┘
                         └─────rejoin────┘        draining ──empty──▶ left

* ``left`` — not part of the cluster (reserve capacity, or gracefully
  departed).  Holds no keys, runs no workers.
* ``joining`` — announced itself; the rebalancer is migrating its key share
  (via the relocation protocol).  May already receive keys, runs no workers
  yet.
* ``active`` — full member: owns keys, its workers participate in epochs.
* ``draining`` — asked to leave gracefully: its workers finish the current
  epoch and stop; the rebalancer migrates its keys away; when it owns
  nothing it becomes ``left``.  A PS whose policy cannot relocate (static
  allocation) keeps the node ``draining`` forever — precisely the
  inelasticity the paper ascribes to classic parameter servers.
* ``failed`` — crashed: its traffic is dropped, its keys are recovered from
  replicas or the durable log, or declared lost.  Terminal unless the
  machine comes back: ``rejoin`` restarts it through the normal ``joining``
  path (empty-handed — its volatile state died with it; the rebalancer
  migrates a fresh key share to it like any other joiner).

Node 0 is the *seed node* (it hosts the barrier coordinator and anchors the
control plane) and can never drain, fail, or leave.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ClusterError

#: Lifecycle states (see module docstring).
JOINING = "joining"
ACTIVE = "active"
DRAINING = "draining"
FAILED = "failed"
LEFT = "left"

#: All states, in lifecycle order.
STATES = (JOINING, ACTIVE, DRAINING, FAILED, LEFT)


class Membership:
    """The lifecycle state of every node in an elastic cluster.

    Transitions are validated; each one bumps :attr:`version` and is recorded
    in :attr:`history` as ``(time, node, old_state, new_state)``.
    """

    def __init__(self, num_nodes: int, initial_active: Optional[Sequence[int]] = None) -> None:
        if num_nodes < 1:
            raise ClusterError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = num_nodes
        active = list(range(num_nodes)) if initial_active is None else sorted(
            int(node) for node in initial_active
        )
        if not active:
            raise ClusterError("initial active set must not be empty")
        if len(set(active)) != len(active):
            raise ClusterError(f"initial active set contains duplicates: {active}")
        for node in active:
            self._check_node(node)
        if 0 not in active:
            raise ClusterError("node 0 (the seed node) must be initially active")
        active_set = set(active)
        self._states: Dict[int, str] = {
            node: ACTIVE if node in active_set else LEFT for node in range(num_nodes)
        }
        #: Monotone counter, bumped once per transition.
        self.version = 0
        #: Transition log: (simulated time, node, old state, new state).
        self.history: List[Tuple[float, int, str, str]] = []

    # ------------------------------------------------------------------ checks
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ClusterError(f"node {node} out of range [0, {self.num_nodes})")

    def _transition(self, node: int, allowed_from: Tuple[str, ...], to: str, time: float) -> None:
        self._check_node(node)
        if node == 0 and to != ACTIVE:
            raise ClusterError("node 0 is the seed node and cannot drain, fail, or leave")
        old = self._states[node]
        if old not in allowed_from:
            raise ClusterError(
                f"node {node} cannot go {old} -> {to} (allowed from: {', '.join(allowed_from)})"
            )
        self._states[node] = to
        self.version += 1
        self.history.append((time, node, old, to))

    # ------------------------------------------------------------------ queries
    def state_of(self, node: int) -> str:
        """Lifecycle state of ``node``."""
        self._check_node(node)
        return self._states[node]

    def nodes_in(self, *states: str) -> List[int]:
        """Nodes currently in any of ``states`` (sorted)."""
        return sorted(node for node, state in self._states.items() if state in states)

    def active_nodes(self) -> List[int]:
        """Full members (sorted)."""
        return self.nodes_in(ACTIVE)

    def worker_nodes(self) -> List[int]:
        """Nodes whose workers participate in the next epoch (sorted).

        Only fully active nodes compute; joining nodes first receive their
        key share, draining nodes finish up and stop.
        """
        return self.nodes_in(ACTIVE)

    def may_own(self, node: int) -> bool:
        """Whether ``node`` may (still) acquire key ownership.

        Joining nodes receive their rebalanced share; draining, failed, and
        departed nodes must not re-acquire keys (the drain gate in
        :meth:`repro.ps.lapse.LapsePS.process_localize_at_home`).
        """
        self._check_node(node)
        return self._states[node] in (JOINING, ACTIVE)

    # -------------------------------------------------------------- transitions
    def begin_join(self, node: int, time: float = 0.0) -> None:
        """A departed/reserve node announces itself (``left -> joining``)."""
        self._transition(node, (LEFT,), JOINING, time)

    def complete_join(self, node: int, time: float = 0.0) -> None:
        """The joining node received its key share (``joining -> active``)."""
        self._transition(node, (JOINING,), ACTIVE, time)

    def begin_drain(self, node: int, time: float = 0.0) -> None:
        """A member starts leaving gracefully (``active -> draining``)."""
        self._transition(node, (ACTIVE,), DRAINING, time)

    def complete_drain(self, node: int, time: float = 0.0) -> None:
        """The draining node owns nothing anymore (``draining -> left``)."""
        self._transition(node, (DRAINING,), LEFT, time)

    def fail(self, node: int, time: float = 0.0) -> None:
        """A member crashes (``joining/active/draining -> failed``, terminal)."""
        self._transition(node, (JOINING, ACTIVE, DRAINING), FAILED, time)

    def rejoin(self, node: int, time: float = 0.0) -> None:
        """A crashed machine comes back empty-handed (``failed -> joining``)."""
        self._transition(node, (FAILED,), JOINING, time)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        summary = ", ".join(f"{node}:{state}" for node, state in sorted(self._states.items()))
        return f"<Membership v{self.version} {summary}>"
