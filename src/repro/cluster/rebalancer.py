"""Membership-driven key rebalancing and failure recovery.

The :class:`Rebalancer` translates membership events into parameter movement:

* **join** — the versioned :class:`~repro.ps.partition.ElasticPartitioner`
  computes the joining node's balanced key share (movement-minimizing: keys
  move only *to* the new node); home duties for those keys are handed over on
  the control plane, and ownership migrates through the *existing* relocation
  protocol (§3.2) — the rebalancer simply acts as one more localize requester
  on behalf of the new node, so every ``ManagementPolicy.on_relocate`` hook
  (queue draining, hybrid subscriber handoff, metrics) applies unchanged.
* **drain** — the partitioner drops the node from the active set; every key
  the drainee still owns is relocated to that key's (new) home node.  Because
  applications keep localizing while the drain is in flight, the runtime
  re-sweeps at epoch boundaries until the node owns nothing.
* **fail** — the failed node's keys are re-homed (which requires a
  relocation-capable policy) and restored from the best surviving source.
  With the durability subsystem installed (``supports_wal_recovery``), the
  dead node's latest checkpoint plus WAL-suffix replay reproduces its store
  exactly as of the crash instant, and keys whose relocation transfer was on
  the wire are restored from the old owner's ``remove`` record.  Otherwise,
  each key that a surviving node replicates (the hybrid policy) is
  *recovered*: the holder ships its copy to the new owner in a
  :class:`~repro.ps.messages.RecoveryInstall`, which also hands over
  broadcast duties for the remaining replica holders.  Both paths install
  through the same ``RecoveryInstall`` handler — replica sync and crash
  recovery are two consumers of one log.  Keys with no surviving source are
  *lost*: re-initialized to zeros and counted in
  :attr:`~repro.ps.metrics.PSMetrics.lost_keys` — the price of pure
  relocation without durability, which keeps exactly one copy of every
  parameter.

Modeling note: home-table handoff and membership bookkeeping are applied
atomically at event time (a configuration-service control plane); all
*parameter data* moves through real simulated messages.  Requests that were
in flight across the epoch bump are tolerated by the stale-location
forwarding of :meth:`repro.ps.lapse.LapsePS.process_localize_at_home`,
exactly as §3.5 tolerates stale location caches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.membership import ACTIVE, DRAINING, JOINING, Membership
from repro.config import message_size
from repro.errors import ClusterError
from repro.ps.futures import OperationHandle
from repro.ps.lapse import RelocatingKey
from repro.ps.messages import RecoveryInstall
from repro.ps.partition import ElasticPartitioner


@dataclass
class RebalanceOperation:
    """One in-flight rebalance: the data movement triggered by a membership event.

    ``handle`` completes when every migrated key is installed at its target
    (``None`` when the event moved no data).
    """

    kind: str
    node: int
    started_at: float
    handle: Optional[OperationHandle] = None
    moved_keys: int = 0
    recovered_keys: int = 0
    lost_keys: int = 0

    @property
    def done(self) -> bool:
        """Whether all data movement of this operation has completed."""
        return self.handle is None or self.handle.done


class Rebalancer:
    """Migrates key ownership when the cluster membership changes."""

    def __init__(self, ps: Any, membership: Membership) -> None:
        self.ps = ps
        self.membership = membership

    # ----------------------------------------------------------- capabilities
    @property
    def supports_rebalance(self) -> bool:
        """Whether this PS can migrate ownership (relocation + elastic partitioner)."""
        return (
            self.ps.management_policy.supports_rebalance
            and isinstance(self.ps.partitioner, ElasticPartitioner)
        )

    @property
    def supports_replica_recovery(self) -> bool:
        """Whether failed keys can be restored from surviving replicas."""
        return self.ps.management_policy.supports_replica_recovery

    @property
    def supports_wal_recovery(self) -> bool:
        """Whether failed keys can be restored from checkpoints + WAL replay.

        Requires the durability subsystem to be installed on the PS *and* a
        policy whose ``RecoveryInstall`` path can absorb restored keys (plus
        rebalance support, since recovered keys must be re-homed).
        """
        return (
            self.ps.durability is not None
            and self.ps.management_policy.supports_wal_recovery
            and self.supports_rebalance
        )

    # ---------------------------------------------------------------- helpers
    def _eligible_owners(self) -> List[int]:
        """Nodes the partitioner may assign keys to (joining + active)."""
        return self.membership.nodes_in(JOINING, ACTIVE)

    def owned_keys(self, node: int) -> List[int]:
        """Keys currently owned by ``node`` (via the location tables)."""
        ps = self.ps
        keys = np.arange(ps.ps_config.num_keys, dtype=np.int64)
        return keys[ps.current_owners(keys) == node].tolist()

    def _rebalance_partitioner(self) -> List[Tuple[int, int, int]]:
        """Recompute the home assignment for the current eligible set."""
        partitioner: ElasticPartitioner = self.ps.partitioner
        eligible = self._eligible_owners()
        if eligible == partitioner.active_nodes:
            return []
        return partitioner.rebalance(eligible)

    def _handoff_homes(self, moves: List[Tuple[int, int, int]]) -> None:
        """Move home-table entries to the new home nodes (control plane).

        The location *data* (key -> current owner) is preserved; only the node
        responsible for serving it changes.  In-flight localize requests that
        still target the old home are forwarded along the new assignment.
        """
        states = self.ps.states
        for key, old_home, new_home in moves:
            owner = states[old_home].home_location.pop(key)
            states[new_home].home_location[key] = owner

    def _relocate_to_homes(
        self, targets: Dict[int, List[int]], now: float
    ) -> Tuple[Optional[OperationHandle], int]:
        """Relocate key groups to their home nodes via the relocation protocol.

        Returns the completion handle (``None`` if nothing moved) and the
        number of keys whose migration was initiated.
        """
        ps = self.ps
        all_keys = sorted(key for keys in targets.values() for key in keys)
        if not all_keys:
            return None, 0
        handle = OperationHandle(ps.sim, "rebalance", all_keys, ps.ps_config.value_length)
        moved = 0
        for target in sorted(targets):
            target_state = ps.states[target]
            fresh: List[int] = []
            for key in sorted(targets[target]):
                if target_state.storage.contains(key):
                    # Already where it belongs; nothing to move.
                    handle.complete_keys([key])
                    continue
                entry = target_state.relocating_in.get(key)
                if entry is not None:
                    # An application localize is already pulling the key in;
                    # piggyback on it instead of racing it.
                    entry.localize_handles.append(handle)
                    moved += 1
                    continue
                target_state.relocating_in[key] = RelocatingKey(
                    key=key, requested_at=now, localize_handles=[handle]
                )
                fresh.append(key)
                moved += 1
            if fresh:
                target_state.metrics.rebalanced_keys += len(fresh)
                ps.process_localize_at_home(target_state, tuple(fresh), requester=target)
        if moved == 0 and not handle.done:  # pragma: no cover - defensive
            handle.complete_keys(all_keys)
        return handle, moved

    # ------------------------------------------------------------------- join
    def rebalance_for_join(self, node: int, now: float) -> RebalanceOperation:
        """Give a joining node its balanced key share (home duty + ownership)."""
        operation = RebalanceOperation(kind="join", node=node, started_at=now)
        if not self.supports_rebalance:
            # Static/replicated allocation: the new node contributes workers
            # but cannot take over keys.
            return operation
        moves = self._rebalance_partitioner()
        self._handoff_homes(moves)
        targets: Dict[int, List[int]] = {}
        for key, _old_home, new_home in moves:
            targets.setdefault(new_home, []).append(key)
        self.ps.states[node].metrics.rebalance_rounds += 1
        operation.handle, operation.moved_keys = self._relocate_to_homes(targets, now)
        return operation

    # ------------------------------------------------------------------ drain
    def rebalance_for_drain(self, node: int, now: float) -> RebalanceOperation:
        """Move everything off a draining node (also the boundary re-sweep)."""
        operation = RebalanceOperation(kind="drain", node=node, started_at=now)
        if not self.supports_rebalance:
            # A static allocation cannot shed the node's keys: it keeps
            # serving them (forever "draining") — the classic-PS inelasticity.
            return operation
        moves = self._rebalance_partitioner()
        self._handoff_homes(moves)
        partitioner: ElasticPartitioner = self.ps.partitioner
        targets: Dict[int, List[int]] = {}
        for key in self.owned_keys(node):
            targets.setdefault(partitioner.node_of(key), []).append(key)
        self.ps.states[node].metrics.rebalance_rounds += 1
        operation.handle, operation.moved_keys = self._relocate_to_homes(targets, now)
        return operation

    # ---------------------------------------------------------------- failure
    def recover_after_failure(self, node: int, now: float) -> RebalanceOperation:
        """Re-home a failed node's keys; recover from replicas or declare lost."""
        ps = self.ps
        if not self.supports_rebalance:
            raise ClusterError(
                f"cannot recover the keys of failed node {node}: the "
                f"{ps.management_policy.name} policy does not support "
                "rebalancing, and recovery must re-home the failed keys "
                "(only relocation-capable policies can)"
            )
        operation = RebalanceOperation(kind="fail", node=node, started_at=now)
        # New owners must be eligible (joining/active); replica *sources* may
        # also be draining nodes — alive and connected, their replicas are
        # released only once their drain completes.
        replica_sources = self.membership.nodes_in(JOINING, ACTIVE, DRAINING)
        # 1) Home duties held by the failed node move to survivors (the
        #    control plane mirrors location tables, so they survive the crash).
        moves = self._rebalance_partitioner()
        self._handoff_homes(moves)
        # 2) Scrub the failed node from replication bookkeeping on survivors.
        if self.supports_replica_recovery:
            for survivor in replica_sources:
                state = ps.states[survivor]
                for subscriber_set in state.subscribers.values():
                    subscriber_set.discard(node)
                state.broadcast_buffer.pop(node, None)
        # 3) Every key the failed node owned is recovered or lost.  Recovery
        #    sources, in priority order: the durable log (checkpoint + WAL
        #    replay — exact as of the crash instant), a `remove` record in a
        #    survivor's WAL (the key's relocation transfer was on the wire to
        #    the dead node), a surviving replica, nothing (lost).  Both the
        #    WAL and the replica path install through the same
        #    ``RecoveryInstall`` handler — two consumers of one log.
        partitioner: ElasticPartitioner = self.ps.partitioner
        value_length = ps.ps_config.value_length
        wal_recovery = self.supports_wal_recovery
        durable: Dict[int, np.ndarray] = {}
        if wal_recovery:
            durable, _replayed = ps.durability.recovered_state(node)
        recovery_groups: Dict[Tuple[int, int], List[Tuple[int, Tuple[int, ...]]]] = {}
        wal_groups: Dict[int, List[Tuple[int, np.ndarray, Tuple[int, ...]]]] = {}
        pending: List[int] = []
        for key in self.owned_keys(node):
            # Stale-home tolerance: a localize instruction in flight at crash
            # time can leave the key resident on a survivor even though the
            # home table already names the dead node as owner.  The data is
            # safe where it is — re-point the home entry instead of
            # restoring a stale copy over it.
            resident_at = next(
                (
                    survivor
                    for survivor in replica_sources
                    if ps.states[survivor].storage.contains(key)
                ),
                None,
            )
            target = partitioner.node_of(key)
            target_state = ps.states[target]
            if resident_at is not None:
                target_state.home_location[key] = resident_at
                continue
            target_state.home_location[key] = target
            holders: List[int] = []
            if self.supports_replica_recovery:
                holders = [
                    survivor
                    for survivor in replica_sources
                    if key in getattr(ps.states[survivor], "replicas", {})
                ]
            value: Optional[np.ndarray] = None
            if wal_recovery:
                value = durable.get(key)
                if value is None:
                    # Not durably owned by anyone: the key's transfer to the
                    # dead node vanished on the wire, so the last durable
                    # copy rides in the old owner's `remove` record.
                    value = ps.durability.last_removed_value(key)
            if value is not None:
                if key not in target_state.relocating_in:
                    # Piggyback on an in-flight application localize if one
                    # exists (its handles drain with the recovery install).
                    target_state.relocating_in[key] = RelocatingKey(
                        key=key, requested_at=now
                    )
                wal_groups.setdefault(target, []).append((key, value, tuple(holders)))
                operation.recovered_keys += 1
            elif holders:
                source = holders[0]
                if key not in target_state.relocating_in:
                    target_state.relocating_in[key] = RelocatingKey(
                        key=key, requested_at=now
                    )
                recovery_groups.setdefault((source, target), []).append(
                    (key, tuple(holders))
                )
                pending.append(key)
                operation.recovered_keys += 1
            else:
                target_state.storage.insert(key, np.zeros(value_length))
                target_state.metrics.lost_keys += 1
                operation.lost_keys += 1
        # 3b) Keys restored from the durable log install synchronously: the
        #     read is off the crashed node's persisted state, not a network
        #     transfer, so it rides no simulated message.  Going through the
        #     policy's ``on_relocate`` reuses the full recovery semantics —
        #     queued operations drain onto the new owner and (hybrid) the
        #     surviving subscribers' broadcast duties are handed over.
        for target in sorted(wal_groups):
            entries = wal_groups[target]
            target_state = ps.states[target]
            install = RecoveryInstall(
                keys=tuple(key for key, _value, _holders in entries),
                values=np.stack([value for _key, value, _holders in entries]),
                source_node=node,
                failed_node=node,
                subscribers=tuple(holders for _key, _value, holders in entries),
            )
            ps.management_policy.on_relocate(target_state, install)
            target_state.metrics.wal_recovered_keys += len(entries)
            operation.moved_keys += len(entries)
        # 4) Surviving holders ship their copies to the new owners.
        if pending:
            handle = OperationHandle(ps.sim, "rebalance", sorted(pending), value_length)
            operation.handle = handle
            operation.moved_keys += len(pending)
            for (source, target), entries in sorted(recovery_groups.items()):
                source_state = ps.states[source]
                keys = tuple(key for key, _holders in entries)
                for key in keys:
                    ps.states[target].relocating_in[key].localize_handles.append(handle)
                values = np.stack(
                    [np.array(source_state.replicas[key], dtype=np.float64) for key in keys]
                )
                for key in keys:
                    # The snapshot subsumes the holder's unflushed updates.
                    source_state.pending_updates.pop(key, None)
                install = RecoveryInstall(
                    keys=keys,
                    values=values,
                    source_node=source,
                    failed_node=node,
                    subscribers=tuple(holders for _key, holders in entries),
                )
                ps.send_to_server(
                    source, target, install, message_size(len(keys), values.size)
                )
        ps.states[node].metrics.rebalance_rounds += 1
        return operation
