"""Scripted cluster schedules: join/drain/fail events at simulated times.

A :class:`ClusterSchedule` is the test- and benchmark-facing way to drive an
elastic cluster: a list of :class:`ClusterEvent` entries, each naming a node,
an event kind, and the simulated time at which the control plane acts.  The
:class:`~repro.cluster.runtime.ElasticCluster` runtime consumes the schedule
in time order while the workload runs; join and drain events whose time
falls inside an epoch fire mid-epoch (the simulation driver interleaves them
with message processing), events at or before an epoch boundary fire before
the epoch's workers start, and fail events are always held to the next epoch
boundary (a crash cannot abort the node's running worker generators).

An **empty schedule is guaranteed inert**: no control-plane action is taken,
and the simulated results are bit-identical to a run without the elastic
runtime (asserted by the test-suite and ``bench_elasticity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.errors import ClusterError

#: Event kinds.
JOIN = "join"
DRAIN = "drain"
FAIL = "fail"
REJOIN = "rejoin"

KINDS = (JOIN, DRAIN, FAIL, REJOIN)


@dataclass(frozen=True, slots=True)
class ClusterEvent:
    """One scripted membership event: ``kind`` on ``node`` at simulated ``time``."""

    time: float
    kind: str
    node: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ClusterError(f"event time must be non-negative, got {self.time}")
        if self.kind not in KINDS:
            raise ClusterError(f"unknown event kind {self.kind!r} (expected one of {KINDS})")
        if self.node < 0:
            raise ClusterError(f"event node must be non-negative, got {self.node}")


class ClusterSchedule:
    """An ordered script of membership events.

    Events may be passed at construction or added through the chainable
    builders::

        schedule = ClusterSchedule().join(0.5, node=2).drain(1.5, node=1)

    Iteration yields the events sorted by time (ties in insertion order).
    """

    def __init__(self, events: Iterable[ClusterEvent] = ()) -> None:
        self._events: List[Tuple[float, int, ClusterEvent]] = []
        self._sequence = 0
        for event in events:
            self.add(event)

    # ---------------------------------------------------------------- building
    def add(self, event: ClusterEvent) -> "ClusterSchedule":
        """Add one event (keeps the schedule sorted by time, then insertion)."""
        if not isinstance(event, ClusterEvent):
            raise ClusterError(f"expected a ClusterEvent, got {event!r}")
        self._events.append((event.time, self._sequence, event))
        self._sequence += 1
        self._events.sort(key=lambda item: (item[0], item[1]))
        return self

    def join(self, time: float, node: int) -> "ClusterSchedule":
        """Schedule ``node`` to join the cluster at ``time``."""
        return self.add(ClusterEvent(time=time, kind=JOIN, node=node))

    def drain(self, time: float, node: int) -> "ClusterSchedule":
        """Schedule ``node`` to start a graceful drain at ``time``."""
        return self.add(ClusterEvent(time=time, kind=DRAIN, node=node))

    def fail(self, time: float, node: int) -> "ClusterSchedule":
        """Schedule ``node`` to crash at ``time`` (failure injection)."""
        return self.add(ClusterEvent(time=time, kind=FAIL, node=node))

    def rejoin(self, time: float, node: int) -> "ClusterSchedule":
        """Schedule a previously failed ``node`` to come back at ``time``.

        The node rejoins empty-handed (its volatile state died with the
        crash) and goes through the normal joining rebalance.  Ordered after
        the matching ``fail`` — schedule sorting keeps ties in insertion
        order, so ``fail(t, n)`` followed by ``rejoin(t, n)`` models a
        crash-and-restart at one epoch boundary.
        """
        return self.add(ClusterEvent(time=time, kind=REJOIN, node=node))

    # ----------------------------------------------------------------- queries
    @property
    def events(self) -> List[ClusterEvent]:
        """The scripted events, sorted by time (ties in insertion order)."""
        return [event for _, _, event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ClusterEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        inner = ", ".join(
            f"{event.kind}({event.time:g}, node={event.node})" for event in self.events
        )
        return f"<ClusterSchedule [{inner}]>"
