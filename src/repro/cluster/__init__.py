"""Elastic cluster runtime: node join/leave, DPA-driven rebalancing, failures.

The paper observes (§7) that dynamic parameter allocation opens the door to
runtime adaptivity beyond classic static clusters.  This subsystem realizes
that: a :class:`Membership` manager tracks node lifecycle states
(joining/active/draining/failed/left), a scripted :class:`ClusterSchedule`
injects join/drain/fail events at simulated times, the :class:`Rebalancer`
migrates key ownership through the *existing* relocation protocol (§3.2) with
home duties reassigned via the versioned
:class:`~repro.ps.partition.ElasticPartitioner`, and :class:`ElasticCluster`
drives it all while a workload runs — including failure recovery from
replicas under the hybrid policy, which combines the relocation machinery
(to re-home a failed node's keys) with replicas (to restore their values);
pure relocation instead counts the keys as lost.
"""

from repro.cluster.membership import (
    ACTIVE,
    DRAINING,
    FAILED,
    JOINING,
    LEFT,
    STATES,
    Membership,
)
from repro.cluster.rebalancer import RebalanceOperation, Rebalancer
from repro.cluster.runtime import ElasticCluster
from repro.cluster.schedule import DRAIN, FAIL, JOIN, ClusterEvent, ClusterSchedule

__all__ = [
    "ACTIVE",
    "DRAIN",
    "DRAINING",
    "FAIL",
    "FAILED",
    "JOIN",
    "JOINING",
    "LEFT",
    "STATES",
    "ClusterEvent",
    "ClusterSchedule",
    "ElasticCluster",
    "Membership",
    "RebalanceOperation",
    "Rebalancer",
]
