"""The elastic cluster runtime: membership events driven into a running PS.

:class:`ElasticCluster` ties together a parameter server, a
:class:`~repro.cluster.membership.Membership` record, a scripted
:class:`~repro.cluster.schedule.ClusterSchedule`, and the
:class:`~repro.cluster.rebalancer.Rebalancer`.  It installs itself as the
server's simulation driver, so scheduled join and drain events fire at their
simulated times *while the workload runs* — a join mid-epoch migrates keys
concurrently with training, exactly the runtime adaptivity that dynamic
parameter allocation enables (PAPER.md §7).  Fail events are held until the
running workers finish (see :meth:`ElasticCluster.drive`): the simulator
cannot abort a worker generator mid-flight, so failures inject at epoch
boundaries.

Usage::

    ps = make_parameter_server("lapse", cluster, config, partitioner=elastic_partitioner)
    elastic = ElasticCluster(ps, initial_nodes=[0, 1])
    elastic.join_at(0.5, node=2)          # or pass a ClusterSchedule
    trainer = MatrixFactorizationTrainer(ps, matrix, mf_config)
    result = elastic.run_epoch(trainer, compute_loss=False)

Per epoch the runtime: applies due events, re-sweeps draining nodes, settles
in-flight protocol traffic, and hands the trainer the worker clients of the
currently active nodes (adjusting the barrier quorum).  With an **empty
schedule and a full initial node set the runtime is inert**: it neither sends
messages nor perturbs barriers, and simulated results are bit-identical to a
run without it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.cluster.membership import ACTIVE, DRAINING, JOINING, Membership
from repro.cluster.rebalancer import RebalanceOperation, Rebalancer
from repro.cluster.schedule import DRAIN, FAIL, JOIN, REJOIN, ClusterEvent, ClusterSchedule
from repro.config import message_size
from repro.errors import ClusterError
from repro.ps.base import van_address
from repro.ps.messages import ReplicaRegisterRequest
from repro.ps.partition import ElasticPartitioner
from repro.ps.policy import InstallingKey
from repro.ps.storage import make_storage


class ElasticCluster:
    """Runtime that makes a simulated PS cluster dynamic.

    Args:
        ps: The parameter server (any variant; ownership migration and
            failure recovery require a relocation-capable policy and an
            :class:`~repro.ps.partition.ElasticPartitioner`).
        initial_nodes: Initially active nodes (default: all).  Must contain
            node 0 and, if the PS uses an elastic partitioner, match its
            active set.
        schedule: Scripted membership events (may also be added later through
            :meth:`join_at` / :meth:`drain_at` / :meth:`fail_at`).
    """

    def __init__(
        self,
        ps: Any,
        initial_nodes: Optional[Sequence[int]] = None,
        schedule: Optional[ClusterSchedule] = None,
    ) -> None:
        self.ps = ps
        num_nodes = ps.cluster.num_nodes
        if initial_nodes is None:
            if isinstance(ps.partitioner, ElasticPartitioner):
                initial_nodes = ps.partitioner.active_nodes
            else:
                initial_nodes = list(range(num_nodes))
        self.membership = Membership(num_nodes, initial_nodes)
        if isinstance(ps.partitioner, ElasticPartitioner):
            if ps.partitioner.active_nodes != self.membership.active_nodes():
                raise ClusterError(
                    "initial_nodes does not match the elastic partitioner's "
                    f"active set: {self.membership.active_nodes()} vs "
                    f"{ps.partitioner.active_nodes}"
                )
        self.schedule = schedule if schedule is not None else ClusterSchedule()
        self.rebalancer = Rebalancer(ps, self.membership)
        #: Applied events with their rebalance operations (report material).
        self.operations: List[Tuple[ClusterEvent, RebalanceOperation]] = []
        self._pending: List[ClusterEvent] = list(self.schedule.events)
        # A full initial node set leaves nothing to adjust; a partial one
        # means barriers must be sized to the participating workers from the
        # first epoch on.
        self._dynamic = len(self.membership.active_nodes()) != num_nodes
        #: Shard-mode registries (populated only inside forked shard
        #: processes): events fired at window barriers this epoch, and one
        #: stitching record per fired event (see ``apply_in_shard``).
        self._shard_fired: List[ClusterEvent] = []
        self._shard_ops: List[dict] = []
        ps.membership = self.membership
        ps._elastic_driver = self

    # ---------------------------------------------------------------- scripting
    def _add_event(self, event: ClusterEvent) -> ClusterEvent:
        self.schedule.add(event)
        self._pending.append(event)
        self._pending.sort(key=lambda e: e.time)
        return event

    def join_at(self, time: float, node: int) -> ClusterEvent:
        """Schedule ``node`` to join at simulated ``time``."""
        return self._add_event(ClusterEvent(time=time, kind=JOIN, node=node))

    def drain_at(self, time: float, node: int) -> ClusterEvent:
        """Schedule ``node`` to start draining at simulated ``time``."""
        return self._add_event(ClusterEvent(time=time, kind=DRAIN, node=node))

    def fail_at(self, time: float, node: int) -> ClusterEvent:
        """Schedule ``node`` to crash at simulated ``time``."""
        return self._add_event(ClusterEvent(time=time, kind=FAIL, node=node))

    def rejoin_at(self, time: float, node: int) -> ClusterEvent:
        """Schedule a failed ``node`` to restart (empty-handed) at ``time``.

        ``fail_at(t, n)`` followed by ``rejoin_at(t, n)`` models a
        crash-and-restart at one epoch boundary: the crash wipes the node's
        volatile state and triggers recovery, the restart re-admits the
        machine through the normal joining rebalance.
        """
        return self._add_event(ClusterEvent(time=time, kind=REJOIN, node=node))

    @property
    def pending_events(self) -> List[ClusterEvent]:
        """Scripted events that have not fired yet."""
        return list(self._pending)

    # -------------------------------------------------------------- sim driving
    def drive(
        self, until: Optional[float] = None, processes: Optional[List[Any]] = None
    ) -> float:
        """Run the simulation, firing scheduled events at their times.

        Drop-in replacement for ``Simulator.run``: processes the event queue
        to exhaustion (or ``until``), but whenever the next scheduled
        membership event is due before the next simulation event it fires the
        membership event first.  Events scheduled later than the end of the
        epoch (all ``processes`` finished and the queue drained) stay pending
        for a later epoch.

        Joins and drains fire mid-epoch; a **fail** event is held until the
        running workers finish and applied at the next epoch boundary.  The
        simulator cannot abort a worker process mid-generator, so a crash
        while the failed node's workers are running would leave them counted
        in the barrier quorum with their messages blackholed — a deadlock,
        not a model of failure.  When ``processes`` is ``None`` (manually
        driven simulations, :meth:`ParameterServer.run`) the driver cannot
        see the workers at all, so fails are always held: apply them through
        the epoch API (:meth:`run_epoch` / :meth:`prepare_epoch`).  Events
        scheduled behind a held fail are held with it, preserving the script
        order.
        """
        sim = self.ps.sim
        while True:
            event = self._pending[0] if self._pending else None
            if event is not None and until is not None and event.time > until:
                event = None
            workers_done = bool(processes) and all(p.processed for p in processes)
            if event is not None and event.kind == FAIL and not workers_done:
                event = None
            fire = False
            if event is not None:
                if event.time <= sim.now:
                    fire = True
                else:
                    next_time = sim.peek_time()
                    if next_time is None:
                        # Empty queue: a deadlock rescue fires the event even
                        # ahead of its time while workers still run; once the
                        # epoch is over the event stays pending for a later
                        # epoch instead.
                        fire = not workers_done
                    elif event.time <= next_time:
                        # Punctual firing: the event is due before (or at) the
                        # next simulation event, so it fires at exactly its
                        # scheduled time — also during the post-worker settle
                        # tail, where the parallel engine's barrier protocol
                        # fires at the same instant.
                        fire = True
            if fire:
                if event.time > sim.now:
                    sim.run(until=event.time)
                self._pending.pop(0)
                self._apply(event)
                continue
            next_time = sim.peek_time()
            if next_time is None or (until is not None and next_time > until):
                if until is not None:
                    sim.run(until=until)
                break
            sim.step()
        return sim.now

    def settle(self) -> float:
        """Drain all in-flight protocol traffic (no event firing)."""
        sim = self.ps.sim
        while sim.peek_time() is not None:
            sim.step()
        return sim.now

    # ------------------------------------------------------------ event handling
    def _apply(self, event: ClusterEvent) -> RebalanceOperation:
        now = self.ps.sim.now
        if event.kind == JOIN:
            self.membership.begin_join(event.node, now)
            operation = self.rebalancer.rebalance_for_join(event.node, now)
        elif event.kind == DRAIN:
            self.membership.begin_drain(event.node, now)
            operation = self.rebalancer.rebalance_for_drain(event.node, now)
        elif event.kind == FAIL:
            self.membership.fail(event.node, now)
            # Order matters: blackhole the node (dropping in-flight messages
            # addressed to it — a crash loses what was on the wire), recover
            # its keys from replicas and/or the durable log (the recovery
            # read needs the *pre-crash* checkpoints and WAL), then wipe its
            # volatile state and seal its durable history.
            self.ps.network.fail_node(event.node)
            operation = self.rebalancer.recover_after_failure(event.node, now)
            self._wipe_volatile_state(event.node)
            if self.ps.durability is not None:
                self.ps.durability.reset_after_crash(event.node)
        elif event.kind == REJOIN:
            self.membership.rejoin(event.node, now)
            self.ps.network.restore_node(event.node)
            operation = self.rebalancer.rebalance_for_join(event.node, now)
        else:  # pragma: no cover - ClusterEvent validates kinds
            raise ClusterError(f"unknown event kind {event.kind!r}")
        self._dynamic = True
        self.operations.append((event, operation))
        tracer = self.ps.tracer
        if tracer is not None:
            tracer.marker(
                event.node,
                now,
                f"membership:{event.kind}",
                moved_keys=operation.moved_keys,
                recovered_keys=operation.recovered_keys,
                lost_keys=operation.lost_keys,
            )
        if self.ps.sim._shard_rank is not None:
            # Shard mode: the handle's keys complete on whichever shards own
            # the target nodes, so no single process can observe completion —
            # progress is exchanged at window barriers and stitched via
            # finish_shard_ops / merge_shard_epoch instead of a callback.
            if operation.handle is None:
                self._finish_operation(event, operation, record_time=False)
            self._shard_ops.append(
                {
                    "event": event,
                    "operation": operation,
                    "r0": None,
                    "finished": operation.handle is None,
                }
            )
        elif operation.handle is None:
            self._finish_operation(event, operation, record_time=False)
        else:
            operation.handle.completion_event.callbacks.append(
                lambda _evt: self._finish_operation(event, operation)
            )
        return operation

    def _finish_operation(
        self, event: ClusterEvent, operation: RebalanceOperation, record_time: bool = True
    ) -> None:
        """Flip membership once an event's data movement has completed."""
        membership = self.membership
        node = event.node
        if record_time:
            self.ps.states[node].metrics.rebalance_time.record(
                self.ps.sim.now - operation.started_at
            )
        tracer = self.ps.tracer
        if tracer is not None:
            tracer.marker(
                node,
                self.ps.sim.now,
                f"rebalance:{event.kind}:complete",
                duration=self.ps.sim.now - operation.started_at,
                moved_keys=operation.moved_keys,
            )
        if event.kind in (JOIN, REJOIN) and membership.state_of(node) == JOINING:
            membership.complete_join(node, self.ps.sim.now)
        # Drains flip to "left" only at the next epoch boundary
        # (prepare_epoch): the drainee's workers may still be mid-epoch, and
        # applications can keep moving keys back until they stop.

    # ------------------------------------------------------- shard-mode barriers
    def shard_barrier_time(self) -> Optional[float]:
        """Time of the next pending membership event (the window barrier)."""
        return self._pending[0].time if self._pending else None

    def apply_in_shard(self) -> int:
        """Fire every membership event due at the barrier instant (replicated).

        Runs inside each shard process once all shards have quiesced through
        the barrier time and synchronized the control-plane state the apply
        reads: every shard executes the identical apply against identical
        state, drawing scheduling keys from the replicated apply stream
        (:meth:`Simulator.begin_apply`), so the shards stay in lockstep.
        Events due at the same instant fire back to back, exactly as the
        sequential driver's ``event.time <= sim.now`` top-of-loop check does.
        """
        sim = self.ps.sim
        fired = 0
        sim.begin_apply()
        try:
            while self._pending and self._pending[0].time <= sim.now:
                event = self._pending.pop(0)
                if event.kind == FAIL:  # pragma: no cover - gated by fallback
                    raise ClusterError(
                        "a fail event reached the sharded engine; pending "
                        "failures must fall back to the sequential driver"
                    )
                self._shard_fired.append(event)
                self._apply(event)
                fired += 1
        finally:
            sim.end_apply()
        for entry in self._shard_ops:
            if entry["r0"] is None and entry["operation"].handle is not None:
                entry["r0"] = len(entry["operation"].handle._pending_keys)
        return fired

    def shard_op_progress(self) -> List[Tuple[int, Optional[float]]]:
        """Per fired event: (keys still pending on this shard, last progress).

        Each shard completes a disjoint subset of an operation's keys (the
        ones whose target nodes it owns), so summing ``r0 - remaining`` over
        shards counts completions exactly once, and the max of the progress
        stamps is the operation's completion instant.
        """
        rows: List[Tuple[int, Optional[float]]] = []
        for entry in self._shard_ops:
            handle = entry["operation"].handle
            if handle is None:
                rows.append((0, None))
            else:
                rows.append((len(handle._pending_keys), handle.last_progress_at))
        return rows

    def finish_shard_ops(
        self, progress_rows: Sequence[Sequence[Tuple[int, Optional[float]]]]
    ) -> int:
        """Finish operations whose data movement has globally completed.

        ``progress_rows`` holds every shard's :meth:`shard_op_progress`, in
        rank order — identical input on every shard, so the replicated finish
        decisions (and the membership flips and metric records they make)
        stay in lockstep.  Completions are finished in completion-time order,
        matching the order the sequential engine's callbacks fire in.
        """
        due = []
        for index, entry in enumerate(self._shard_ops):
            if entry["finished"]:
                continue
            completed = sum(entry["r0"] - rows[index][0] for rows in progress_rows)
            if completed < entry["r0"]:
                continue
            stamps = [
                rows[index][1] for rows in progress_rows if rows[index][1] is not None
            ]
            due.append((max(stamps), index))
        for t_star, index in sorted(due):
            entry = self._shard_ops[index]
            entry["finished"] = True
            self._finish_shard_op(entry["event"], entry["operation"], t_star)
        return len(due)

    def _finish_shard_op(
        self, event: ClusterEvent, operation: RebalanceOperation, t_star: float
    ) -> None:
        """The stitched equivalent of :meth:`_finish_operation` at ``t_star``."""
        node = event.node
        self.ps.states[node].metrics.rebalance_time.record(t_star - operation.started_at)
        if event.kind in (JOIN, REJOIN) and self.membership.state_of(node) == JOINING:
            self.membership.complete_join(node, t_star)

    def shard_epoch_summary(self, rank: int) -> dict:
        """Control-plane outcome of a sharded epoch, shipped to the parent.

        Every shard reports its operation progress; rank 0 additionally
        carries the replicated facts (fired events, membership, operation
        metadata) the parent adopts in :meth:`merge_shard_epoch`.
        """
        summary: dict = {"progress": self.shard_op_progress()}
        if rank == 0:
            summary.update(
                fired=len(self._shard_fired),
                # The rebalance apply mutates the partitioner (add/drop nodes,
                # reassign keys); ship its attributes so the parent's instance
                # — which clients and policies reference — can catch up.
                partitioner_state=dict(vars(self.ps.partitioner)),
                membership_states=dict(self.membership._states),
                membership_version=self.membership.version,
                membership_history=list(self.membership.history),
                ops=[
                    {
                        "event_time": entry["event"].time,
                        "event_kind": entry["event"].kind,
                        "node": entry["event"].node,
                        "kind": entry["operation"].kind,
                        "started_at": entry["operation"].started_at,
                        "moved_keys": entry["operation"].moved_keys,
                        "recovered_keys": entry["operation"].recovered_keys,
                        "lost_keys": entry["operation"].lost_keys,
                        "r0": entry["r0"],
                        "finished": entry["finished"],
                    }
                    for entry in self._shard_ops
                ],
            )
        return summary

    def merge_shard_epoch(self, summaries: Sequence[dict]) -> None:
        """Adopt the children's control-plane outcome after a sharded epoch.

        Runs in the parent, *after* the node-state payload merge (so late
        stitched completions record their metrics into the merged state).
        The fired events leave the pending list, rank 0's membership record
        is adopted wholesale (all shards hold the identical replicated copy),
        and each fired event's operation is reconstructed handle-less with
        its final counts — by quiescence, any operation that can complete
        has, and one that has not would not have completed sequentially
        either.
        """
        lead = summaries[0]
        for _ in range(lead["fired"]):
            self._pending.pop(0)
        # In-place update: the parent's partitioner object is referenced all
        # over (clients, policies), so its identity must not change.
        vars(self.ps.partitioner).update(lead["partitioner_state"])
        membership = self.membership
        membership._states = lead["membership_states"]
        membership.version = lead["membership_version"]
        membership.history = lead["membership_history"]
        if lead["fired"]:
            self._dynamic = True
        rebuilt: List[Tuple[ClusterEvent, RebalanceOperation]] = []
        for opdata in lead["ops"]:
            event = ClusterEvent(
                time=opdata["event_time"], kind=opdata["event_kind"], node=opdata["node"]
            )
            operation = RebalanceOperation(
                kind=opdata["kind"],
                node=opdata["node"],
                started_at=opdata["started_at"],
                handle=None,
                moved_keys=opdata["moved_keys"],
                recovered_keys=opdata["recovered_keys"],
                lost_keys=opdata["lost_keys"],
            )
            self.operations.append((event, operation))
            rebuilt.append((event, operation))
        progress_rows = [summary["progress"] for summary in summaries]
        due = []
        for index, opdata in enumerate(lead["ops"]):
            if opdata["finished"]:
                continue
            completed = sum(opdata["r0"] - rows[index][0] for rows in progress_rows)
            if completed < opdata["r0"]:
                continue
            stamps = [
                rows[index][1] for rows in progress_rows if rows[index][1] is not None
            ]
            due.append((max(stamps), index))
        for t_star, index in sorted(due):
            event, operation = rebuilt[index]
            self._finish_shard_op(event, operation, t_star)

    def _wipe_volatile_state(self, node: int) -> None:
        """Model the crash: the failed node's RAM is gone.

        The parameter store is replaced with a fresh empty one (re-wrapped
        in the node's WAL when durability is on — the log survives the
        crash), and every policy-attached volatile table is cleared.  The
        home-location table survives: it is cluster routing metadata that
        failure recovery consults to enumerate the dead node's keys, not
        data held in the dead node's RAM.
        """
        ps = self.ps
        state = ps.states[node]
        fresh = make_storage(
            dense=ps.ps_config.dense_storage,
            num_keys=ps.ps_config.num_keys,
            value_length=ps.ps_config.value_length,
        )
        if ps.durability is not None:
            fresh = ps.durability.wrap_fresh_storage(node, fresh)
        state.storage = fresh
        for attr in (
            "relocating_in",
            "last_transfer",
            "location_cache",
            "replicas",
            "pending_updates",
            "installing",
            "subscribers",
            "broadcast_buffer",
            "subscriptions",
            "flush_counts",
            "pending_flush_acks",
            "pending_fetches",
        ):
            table = getattr(state, attr, None)
            if table is not None:
                table.clear()

    def _complete_drain(self, node: int) -> None:
        """Finish a graceful departure: release replicas, flip to ``left``."""
        self._release_replicas(node)
        self.membership.complete_drain(node, self.ps.sim.now)

    def _release_replicas(self, node: int) -> None:
        """Tear down the replication state of a departing node.

        The leaving node first flushes its unsynchronized replica updates
        (graceful departure loses nothing), then drops its replica copies and
        is unsubscribed everywhere — so owners stop broadcasting to it and
        later failure recovery never counts a departed node as a surviving
        replica holder.
        """
        ps = self.ps
        if not self.rebalancer.supports_replica_recovery:
            return
        state = ps.states[node]
        if state.pending_updates:
            ps.synchronize_node(state)
        state.replicas.clear()
        state.pending_updates.clear()
        state.installing.clear()
        for other in range(ps.cluster.num_nodes):
            if other == node:
                continue
            other_state = ps.states[other]
            for subscriber_set in other_state.subscribers.values():
                subscriber_set.discard(node)
            other_state.broadcast_buffer.pop(node, None)

    # ------------------------------------------------------------- epoch driving
    def participating_clients(self) -> List[Any]:
        """Worker clients of the currently active nodes (epoch participants)."""
        ps = self.ps
        return [
            ps.client(node, worker)
            for node in self.membership.worker_nodes()
            for worker in range(ps.cluster.workers_per_node)
        ]

    def prepare_epoch(self) -> List[Any]:
        """Run all boundary work and return the epoch's worker clients.

        Applies events that are already due, re-sweeps draining nodes,
        settles in-flight traffic, completes finished drains, and sizes the
        barrier quorum to the participating workers.  Inert (and free) while
        the cluster has never changed.
        """
        sim = self.ps.sim
        while self._pending and self._pending[0].time <= sim.now:
            self._apply(self._pending.pop(0))
        for node in self.membership.nodes_in(DRAINING):
            if self.rebalancer.supports_rebalance and self.rebalancer.owned_keys(node):
                event = ClusterEvent(time=sim.now, kind=DRAIN, node=node)
                operation = self.rebalancer.rebalance_for_drain(node, sim.now)
                self.operations.append((event, operation))
                if operation.handle is not None:
                    operation.handle.completion_event.callbacks.append(
                        lambda _evt, e=event, op=operation: self._finish_operation(e, op)
                    )
        self.settle()
        for node in self.membership.nodes_in(DRAINING):
            if self.rebalancer.supports_rebalance and not self.rebalancer.owned_keys(node):
                self._complete_drain(node)
        self.settle()  # deliver the departing nodes' final replica flushes
        clients = self.participating_clients()
        if self._dynamic:
            # Participants changed at some point: barriers must count exactly
            # the epoch's workers, and generations restart from a clean base
            # (all previous barriers have completed between epochs).
            for client in clients:
                client._barrier_generation = 0
            self.ps._barrier_expected = len(clients)
        return clients

    def run_epoch(self, trainer: Any, **kwargs: Any) -> Any:
        """Run one workload epoch under the current membership.

        ``trainer`` must expose ``run_epoch(..., clients=...)`` — currently
        the matrix-factorization trainer; the KGE and word-vector trainers do
        not take a client subset yet.  Scheduled joins and drains whose time
        falls inside the epoch fire mid-epoch; fails apply at the boundary.
        """
        clients = self.prepare_epoch()
        return trainer.run_epoch(clients=clients, **kwargs)

    # ------------------------------------------------------------- resilience
    def ensure_backups(self) -> int:
        """Provision one standby replica for every owned key that has none.

        Primary-backup fault tolerance built from the replication machinery:
        for each active node, the next active node (ring order) subscribes to
        all keys the owner currently holds without subscribers, so a
        subsequent failure loses nothing.  Requires a policy that maintains
        recoverable replicas (hybrid/replica); returns the number of replica
        installs requested (0 when unsupported or nothing to do).
        """
        ps = self.ps
        if not self.rebalancer.supports_replica_recovery:
            return 0
        actives = self.membership.nodes_in(ACTIVE)
        if len(actives) < 2:
            return 0
        requested = 0
        for position, owner in enumerate(actives):
            backup = actives[(position + 1) % len(actives)]
            owner_state = ps.states[owner]
            backup_state = ps.states[backup]
            group: List[int] = []
            for key in sorted(owner_state.storage.keys()):
                if owner_state.subscribers.get(key):
                    continue
                if key in backup_state.replicas or key in backup_state.installing:
                    continue
                backup_state.installing[key] = InstallingKey(key=key)
                group.append(key)
            if group:
                request = ReplicaRegisterRequest(
                    keys=tuple(group),
                    requester_node=backup,
                    reply_to=van_address(backup),
                )
                ps.send_to_server(
                    backup, owner, request, message_size(len(group), 0)
                )
                requested += len(group)
        if requested:
            self.settle()
        return requested

    # ----------------------------------------------------------------- report
    @property
    def recovered_keys(self) -> int:
        """Keys recovered from replicas across all failure events."""
        return sum(op.recovered_keys for _event, op in self.operations)

    @property
    def lost_keys(self) -> int:
        """Keys lost (re-initialized) across all failure events."""
        return sum(op.lost_keys for _event, op in self.operations)
