"""Summarize an exported trace file: ``python -m repro.obs.report TRACE.json``.

Prints the per-op-type latency table (count / mean / p50 / p90 / p99 / max),
the relocation activity, the membership markers, the hottest keys, and the
sampled counter trajectories — the latency/locality view of the paper's
Tables 3 and 5, reconstructed from one trace file instead of a live run.

``--validate`` additionally checks the file against the Chrome trace-event
schema (exit code 1 on a malformed trace), which is how the CI ``obs-smoke``
job gates exported artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.export import load_trace, validate_trace


def _format_seconds(value: float) -> str:
    """Render a latency in engineering units (traces store seconds)."""
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.3f}us"


def _op_rows(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    summary = document.get("repro", {}).get("summary", {})
    op_latency = summary.get("op_latency")
    if op_latency:
        return [
            {"op": op_type, **stats} for op_type, stats in sorted(op_latency.items())
        ]
    # Fallback for traces without the repro section (e.g. hand-trimmed files):
    # rebuild the table from the complete events themselves.
    per_op: Dict[str, List[float]] = {}
    for event in document.get("traceEvents", []):
        if event.get("ph") == "X" and event.get("cat") == "op":
            per_op.setdefault(event["name"], []).append(event.get("dur", 0.0) / 1e6)
    rows = []
    for op_type, durations in sorted(per_op.items()):
        durations.sort()
        count = len(durations)

        def pick(q: float, durations=durations, count=count) -> float:
            return durations[min(count - 1, int(q * count))]

        rows.append(
            {
                "op": op_type,
                "count": count,
                "mean": sum(durations) / count,
                "p50": pick(0.50),
                "p90": pick(0.90),
                "p99": pick(0.99),
                "max": durations[-1],
            }
        )
    return rows


def _print_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str]) -> None:
    rendered = []
    for row in rows:
        line = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                value = _format_seconds(value) if column != "count" else str(value)
            line.append(str(value))
        rendered.append(line)
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    print("  ".join(column.ljust(widths[i]) for i, column in enumerate(columns)))
    print("  ".join("-" * width for width in widths))
    for line in rendered:
        print("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))


def report(document: Dict[str, Any], top_keys: int = 10) -> None:
    """Print the full plain-text summary of one trace document."""
    repro = document.get("repro", {})
    summary = repro.get("summary", {})
    print(
        f"trace: system={repro.get('system', '?')} "
        f"time_domain={repro.get('time_domain', '?')} "
        f"spans={summary.get('span_count', '?')} "
        f"dropped={summary.get('dropped', 0)}"
    )
    rows = _op_rows(document)
    if rows:
        print("\nOperation latency (per op type, all nodes):")
        _print_table(rows, ("op", "count", "mean", "p50", "p90", "p99", "max"))
    else:
        print("\nNo operation spans recorded.")

    markers = [
        event
        for event in document.get("traceEvents", [])
        if event.get("ph") == "i"
    ]
    if markers:
        print("\nCluster events:")
        for event in sorted(markers, key=lambda item: item.get("ts", 0.0)):
            at = _format_seconds(event.get("ts", 0.0) / 1e6)
            print(f"  {at:>12}  node {event.get('pid')}  {event.get('name')}")

    relocations = [
        event
        for event in document.get("traceEvents", [])
        if event.get("ph") == "X" and event.get("cat") == "relocation"
    ]
    if relocations:
        total_blocked = sum(
            event.get("args", {}).get("blocked", 0.0) for event in relocations
        )
        print(
            f"\nRelocations: {len(relocations)} keys moved, "
            f"mean blocking {_format_seconds(total_blocked / len(relocations) / 1e6)}"
        )

    heatmap = repro.get("heatmap", {})
    if heatmap:
        hottest = sorted(
            heatmap.items(), key=lambda item: item[1]["accesses"], reverse=True
        )[:top_keys]
        print(f"\nHottest keys (top {len(hottest)}):")
        for key, entry in hottest:
            print(f"  key {key:>8}  {entry['accesses']} accesses")

    samples = repro.get("samples", {})
    if samples:
        points = sum(len(series) for series in samples.values())
        print(
            f"\nCounter time series: {points} samples across "
            f"{len(samples)} nodes (interval {repro.get('metrics_interval')}s); "
            "load the trace in Perfetto to plot them."
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a trace file exported by repro.obs.Tracer.",
    )
    parser.add_argument("trace", help="path to the exported trace JSON")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate against the Chrome trace-event schema before reporting",
    )
    parser.add_argument(
        "--top", type=int, default=10, help="hot keys to list (default: 10)"
    )
    args = parser.parse_args(argv)
    try:
        document = load_trace(args.trace)
        if args.validate:
            validate_trace(document)
            print(f"{args.trace}: schema OK")
        report(document, top_keys=args.top)
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
