"""Span buffers and the tracer that installs them.

Design contract (enforced by ``tests/obs/``): tracing is **pure
observation**.  The hooks only read already-computed simulated times and
append to Python lists — they schedule no kernel events, send no messages,
and draw from no RNG — so a traced run is bit-identical to an untraced one
(simulated times, message/byte counts, metric counters, final model
parameters).  When no tracer is installed every hook is a single
attribute load plus an ``is not None`` check.

Layout: one :class:`NodeTrace` buffer per node, stored at
``NodeState.trace``, and one :class:`_OpRecorder` per worker client, stored
at ``WorkerClient._trace``.  Both ride the parallel engine's existing shard
result payloads (``repro.simnet.parallel`` ships ``vars(state)`` and
``vars(client)`` back to the driver), so ``jobs=N`` runs merge their span
buffers without any extra pipe protocol — the driver's post-epoch states
simply *contain* the shard-recorded spans.  Always read buffers through
``ps.states[n].trace`` (they are replaced on merge, never mutated in the
parent).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.config import TraceConfig
from repro.ps.metrics import PSMetrics, RunningStat

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ps.base import NodeState, ParameterServer
    from repro.ps.futures import OperationHandle


class NodeTrace:
    """Per-node span buffers, histograms, heatmap, and counter samples.

    A plain picklable object: the parallel engine ships it across process
    boundaries inside the shard result payload, and the pickle memo keeps the
    node state's reference and the worker recorders' references pointing at
    one shared object.
    """

    def __init__(self, node: int, config: TraceConfig) -> None:
        self.node = node
        #: Span lists: ``(op_type, worker_id, issued_at, completed_at, nkeys)``.
        self.ops: List[Tuple[str, int, float, float, int]] = []
        #: ``(message_type, arrived_at, started_at, handled_at)``.
        self.server: List[Tuple[str, float, float, float]] = []
        #: ``(payload_type, src_node, dst_node, sent_at, delivered_at, bytes)``.
        self.net: List[Tuple[str, int, int, float, float, int]] = []
        #: ``(key, requested_at, removed_at, installed_at)``.
        self.reloc: List[Tuple[int, float, float, float]] = []
        #: ``(time, name, args)`` instant markers.
        self.markers: List[Tuple[float, str, Dict[str, Any]]] = []
        #: ``(time, values)`` counter samples, aligned with ``counter_names``.
        self.samples: List[Tuple[float, Tuple[float, ...]]] = []
        self.counter_names: Tuple[str, ...] = config.sampled_counters
        #: Per-op-type latency histograms (bounded; never dropped).
        self.hist: Dict[str, RunningStat] = {}
        #: Per-key access heatmap: key -> {time bucket -> access count}.
        self.heat: Dict[int, Dict[int, int]] = {}
        self.max_spans = config.max_spans_per_node
        self.dropped = 0
        self.sample_interval = config.metrics_interval
        self.next_sample = 0.0 if config.metrics_interval is not None else None
        self.heat_interval = config.heatmap_interval
        #: Per-kind record switches (``TraceConfig.server`` / ``relocation``);
        #: op and network recording are gated at their install sites instead.
        self.server_on = config.server
        self.reloc_on = config.relocation

    # ------------------------------------------------------------- recording
    def op(
        self, op_type: str, worker: int, issued: float, completed: float, nkeys: int
    ) -> None:
        """Record one client-operation span (also feeds the histogram)."""
        hist = self.hist.get(op_type)
        if hist is None:
            hist = self.hist[op_type] = RunningStat()
        hist.record(completed - issued)
        if len(self.ops) < self.max_spans:
            self.ops.append((op_type, worker, issued, completed, nkeys))
        else:
            self.dropped += 1

    def heat_key(self, key: int, at: float) -> None:
        """Count one access to ``key`` in the heatmap bucket of ``at``."""
        interval = self.heat_interval
        if interval is None:
            return
        bucket = int(at / interval)
        per_key = self.heat.get(key)
        if per_key is None:
            per_key = self.heat[key] = {}
        per_key[bucket] = per_key.get(bucket, 0) + 1

    def server_span(
        self, name: str, arrived: float, started: float, handled: float,
        metrics: PSMetrics,
    ) -> None:
        """Record one server-side message-handling span; piggyback sampling.

        The counter time series rides the server hook (every node handles a
        steady message stream), so sampling needs no kernel events of its own.
        """
        if self.server_on:
            if len(self.server) < self.max_spans:
                self.server.append((name, arrived, started, handled))
            else:
                self.dropped += 1
        next_sample = self.next_sample
        if next_sample is not None and arrived >= next_sample:
            self.sample(arrived, metrics)

    def net_span(
        self, name: str, src: int, dst: int, sent: float, delivered: float,
        size_bytes: int,
    ) -> None:
        """Record one wire-message span (send instant to delivery instant)."""
        if len(self.net) < self.max_spans:
            self.net.append((name, src, dst, sent, delivered, size_bytes))
        else:
            self.dropped += 1

    def relocation(
        self, key: int, requested: float, removed: float, installed: float
    ) -> None:
        """Record one relocated key (request to install, with the blocking window)."""
        if not self.reloc_on:
            return
        hist = self.hist.get("relocation")
        if hist is None:
            hist = self.hist["relocation"] = RunningStat()
        hist.record(installed - requested)
        if len(self.reloc) < self.max_spans:
            self.reloc.append((key, requested, removed, installed))
        else:
            self.dropped += 1

    def marker(self, at: float, name: str, args: Dict[str, Any]) -> None:
        """Record an instant marker (membership events, rebalance completions)."""
        self.markers.append((at, name, args))

    def sample(self, at: float, metrics: PSMetrics) -> None:
        """Take one counter sample and advance the sampling deadline."""
        values = tuple(float(getattr(metrics, name)) for name in self.counter_names)
        self.samples.append((at, values))
        interval = self.sample_interval
        # Skip ahead past quiet periods instead of back-filling them.
        periods = int(at / interval) + 1
        self.next_sample = periods * interval

    # ------------------------------------------------------------- merging
    def reset(self) -> None:
        """Clear every buffer.

        The real backend's forked worker processes inherit the parent's
        buffer contents; they reset on startup so each child reports only
        its own deltas back to the parent.
        """
        self.ops = []
        self.server = []
        self.net = []
        self.reloc = []
        self.markers = []
        self.samples = []
        self.hist = {}
        self.heat = {}
        self.dropped = 0

    def merge_from(self, other: "NodeTrace") -> None:
        """Fold another buffer's records into this one.

        Used by the real backend's parent process to absorb the deltas each
        worker process reports on exit (the simulated parallel engine ships
        whole buffers inside its shard payloads instead and never calls this).
        """
        self.ops.extend(other.ops)
        self.server.extend(other.server)
        self.net.extend(other.net)
        self.reloc.extend(other.reloc)
        self.markers.extend(other.markers)
        self.samples.extend(other.samples)
        self.dropped += other.dropped
        for op_type, hist in other.hist.items():
            mine = self.hist.get(op_type)
            self.hist[op_type] = hist if mine is None else mine.merge(hist)
        for key, per_key in other.heat.items():
            mine_heat = self.heat.get(key)
            if mine_heat is None:
                self.heat[key] = dict(per_key)
            else:
                for bucket, count in per_key.items():
                    mine_heat[bucket] = mine_heat.get(bucket, 0) + count

    # ------------------------------------------------------------ summaries
    def span_count(self) -> int:
        """Total spans held in this buffer (markers and samples included)."""
        return (
            len(self.ops)
            + len(self.server)
            + len(self.net)
            + len(self.reloc)
            + len(self.markers)
            + len(self.samples)
        )


class _OpRecorder:
    """Per-worker span recorder attached at ``WorkerClient._trace``.

    One pre-bound completion callback per recorder: ``issue`` registers it on
    the operation's completion event (the event carries the handle, so the
    callback needs no captured per-op state — same trick as the outstanding-
    operation cleanup in :class:`~repro.ps.base.NodeState`).
    """

    def __init__(self, trace: NodeTrace, worker_id: int, fused_on: bool) -> None:
        self.trace = trace
        self.worker_id = worker_id
        self.fused_on = fused_on

    def issue(self, handle: "OperationHandle") -> None:
        """Observe an issued operation: heatmap now, span on completion."""
        trace = self.trace
        if trace.heat_interval is not None:
            issued = handle.issued_at
            for key in handle.keys:
                trace.heat_key(key, issued)
        handle.completion_event.callbacks.append(self._complete)

    def _complete(self, event: Any) -> None:
        handle = event._value
        completed = handle.completed_at
        if completed is None:  # failed before any completion timestamp
            return
        self.trace.op(
            handle.op_type, self.worker_id, handle.issued_at, completed,
            len(handle.keys),
        )

    def fused(self, kind: str, key: int, started: float, completed: float) -> None:
        """Record one fused local step (replayed at the fused runner's clock)."""
        trace = self.trace
        trace.op(f"fused_{kind}", self.worker_id, started, completed, 1)
        if trace.heat_interval is not None:
            trace.heat_key(key, started)

    def local_read(self, key: int, at: float) -> None:
        """Heatmap-only observation for handle-free local reads."""
        self.trace.heat_key(key, at)


class Tracer:
    """Installs trace buffers on a parameter server and exports the result.

    Created by ``ParameterServer.__init__`` when a
    :class:`~repro.obs.TraceConfig` with ``enabled=True`` is passed (the
    ``durability=`` pattern); reachable as ``ps.tracer``.
    """

    #: ``"sim"`` (timestamps are simulated seconds) or ``"wall"`` (the real
    #: backend records wall-clock seconds since server creation).
    time_domain = "sim"

    def __init__(
        self, ps: "ParameterServer", config: TraceConfig, time_domain: str = "sim"
    ) -> None:
        probe = PSMetrics()
        for name in config.sampled_counters:
            value = getattr(probe, name, None)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ObservabilityError(
                    f"sampled_counters entry {name!r} is not a scalar "
                    "PSMetrics counter"
                )
        self.ps = ps
        self.config = config
        self.time_domain = time_domain
        for state in ps.states:
            state.trace = NodeTrace(state.node_id, config)
        if config.network and time_domain == "sim":
            ps.network._tracer = self

    # ----------------------------------------------------------- hook points
    def recorder(self, state: "NodeState", worker_id: int) -> Optional[_OpRecorder]:
        """Recorder for one worker client (None when op tracing is off)."""
        if not self.config.ops:
            return None
        return _OpRecorder(state.trace, worker_id, self.config.fused)

    def net_span(
        self, src_node: int, dst_node: int, payload: Any, sent: float,
        delivered: float, size_bytes: int,
    ) -> None:
        """Called by :meth:`repro.simnet.Network.send` after the delivery
        instant is computed (observation only — the send proceeds unchanged)."""
        states = self.ps.states
        if src_node >= len(states):
            return
        trace = states[src_node].trace
        if trace is not None:
            trace.net_span(
                type(payload).__name__, src_node, dst_node, sent, delivered,
                size_bytes,
            )

    def marker(self, node: int, at: float, name: str, **args: Any) -> None:
        """Record an instant marker on ``node``'s timeline."""
        if not self.config.markers:
            return
        states = self.ps.states
        if node >= len(states):
            return
        trace = states[node].trace
        if trace is not None:
            trace.marker(at, name, args)

    # ------------------------------------------------------------- reporting
    def node_traces(self) -> List[NodeTrace]:
        """The live per-node buffers (re-read every call: the parallel engine
        replaces them when it merges shard results)."""
        return [state.trace for state in self.ps.states if state.trace is not None]

    def op_histograms(self) -> Dict[str, RunningStat]:
        """Cluster-wide per-op-type latency histograms (merged across nodes)."""
        merged: Dict[str, RunningStat] = {}
        for trace in self.node_traces():
            for op_type, hist in trace.hist.items():
                existing = merged.get(op_type)
                merged[op_type] = hist if existing is None else existing.merge(hist)
        return merged

    def span_count(self) -> int:
        """Total spans recorded across all nodes."""
        return sum(trace.span_count() for trace in self.node_traces())

    def summary(self) -> Dict[str, Any]:
        """Compact tracer summary (the ``BENCH_PERF.json`` run-row payload)."""
        ops = {
            op_type: {
                "count": hist.count,
                "mean": hist.mean,
                "p50": hist.p50,
                "p90": hist.percentile(0.90),
                "p99": hist.p99,
                "max": hist.maximum if hist.count else 0.0,
            }
            for op_type, hist in sorted(self.op_histograms().items())
        }
        return {
            "time_domain": self.time_domain,
            "span_count": self.span_count(),
            "dropped": sum(trace.dropped for trace in self.node_traces()),
            "op_latency": ops,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full Chrome trace-event document (see :mod:`repro.obs.export`)."""
        from repro.obs.export import build_trace

        return build_trace(self)

    def export(self, path: str) -> Dict[str, Any]:
        """Write the Chrome trace-event JSON to ``path`` and return it.

        Load the file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing`` to browse the timeline.
        """
        document = self.to_dict()
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(document, stream)
        return document
