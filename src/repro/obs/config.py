"""Configuration of the tracing and telemetry subsystem.

:class:`TraceConfig` is threaded through
:func:`~repro.experiments.runner.make_parameter_server` (and the
``ParameterServer`` constructors) exactly like ``durability=``: passing
``None`` — the default everywhere — leaves the hot path untouched, so a
run without tracing pays nothing beyond one attribute-load-and-``None``
check per hooked operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Default :class:`~repro.ps.metrics.PSMetrics` counters sampled into the
#: per-node time series.  All must be scalar counter fields (the streaming
#: :class:`~repro.ps.metrics.RunningStat` fields cannot be sampled as points).
DEFAULT_SAMPLED_COUNTERS: Tuple[str, ...] = (
    "server_messages",
    "key_reads_local",
    "key_reads_remote",
    "key_writes_local",
    "key_writes_remote",
    "relocations",
    "queued_ops",
    "cache_hits",
    "replica_sync_bytes",
)


@dataclass(frozen=True)
class TraceConfig:
    """What to record while a parameter server runs.

    Attributes:
        enabled: Master switch.  ``TraceConfig(enabled=False)`` behaves
            exactly like passing no config at all (no tracer is installed).
        ops: Record one span per client operation (pull/push/localize,
            sync and async), attributed to the issuing worker.
        fused: Record spans for fused local steps
            (:class:`~repro.ps.base.FusedLocalSteps`), replayed at the fused
            runner's deferred clock.
        server: Record one span per server-handled message with the
            arrival → queue-wait → busy breakdown.
        network: Record one span per delivered wire message (send instant to
            delivery instant), attributed to the sending node.
        relocation: Record one span per relocated key (localize request →
            value installed at the new owner), with the blocking window.
        markers: Record instant markers for cluster membership events and
            rebalance completions (elastic runs).
        metrics_interval: Simulated seconds between samples of the per-node
            :class:`~repro.ps.metrics.PSMetrics` counters (the time-series
            telemetry).  ``None`` disables sampling.
        sampled_counters: Scalar ``PSMetrics`` field names to sample.
        heatmap_interval: Simulated seconds per bucket of the per-key access
            heatmap.  ``None`` disables the heatmap.
        max_spans_per_node: Cap on each per-node span list; once a list is
            full, further spans of that kind are counted in ``dropped``
            instead of stored (the histograms keep recording — they are
            bounded by construction).
    """

    enabled: bool = True
    ops: bool = True
    fused: bool = True
    server: bool = True
    network: bool = True
    relocation: bool = True
    markers: bool = True
    metrics_interval: Optional[float] = 1e-3
    sampled_counters: Tuple[str, ...] = DEFAULT_SAMPLED_COUNTERS
    heatmap_interval: Optional[float] = 1e-3
    max_spans_per_node: int = 200_000
