"""Chrome trace-event / Perfetto JSON export and schema validation.

The exported document follows the Chrome trace-event format (JSON object
form): a ``traceEvents`` list of event dicts plus ``displayTimeUnit``.
Open it in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* one *process* (``pid``) per simulated node,
* one *thread* (``tid``) per worker for client-operation spans, plus three
  synthetic lanes per node: the server thread, the network (outgoing wire
  messages), and relocations,
* ``ph: "X"`` complete events for spans (``ts``/``dur`` in microseconds),
* ``ph: "i"`` instant events for membership/rebalance markers,
* ``ph: "C"`` counter events for the sampled ``PSMetrics`` time series,
* ``ph: "M"`` metadata events naming processes and threads.

Everything the viewer does not consume — latency histograms, the hot-key
heatmap, the tracer summary — lives under the custom top-level ``"repro"``
key, which the format explicitly allows and viewers ignore.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.core import Tracer

#: Synthetic per-node lanes (Chrome ``tid`` values chosen far above worker
#: ids so they never collide with real workers).
SERVER_TID = 10_000
NETWORK_TID = 10_001
RELOCATION_TID = 10_002

#: Event phases the validator accepts (the subset the exporter emits).
_KNOWN_PHASES = ("X", "i", "C", "M")


def _us(seconds: float) -> float:
    """Seconds (simulated or wall) to trace-event microseconds."""
    return seconds * 1e6


def build_trace(tracer: "Tracer") -> Dict[str, Any]:
    """Build the full trace-event document from a tracer's live buffers."""
    ps = tracer.ps
    events: List[Dict[str, Any]] = []
    heatmap: Dict[str, Dict[str, Any]] = {}
    samples: Dict[str, List[Dict[str, Any]]] = {}
    system = getattr(ps, "name", type(ps).__name__)
    for trace in tracer.node_traces():
        node = trace.node
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": node,
                "tid": 0,
                "args": {"name": f"node {node} ({system})"},
            }
        )
        for lane_tid, lane_name in (
            (SERVER_TID, "server thread"),
            (NETWORK_TID, "network (outgoing)"),
            (RELOCATION_TID, "relocations"),
        ):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": node,
                    "tid": lane_tid,
                    "args": {"name": lane_name},
                }
            )
        named_workers = set()
        for op_type, worker, issued, completed, nkeys in trace.ops:
            if worker not in named_workers:
                named_workers.add(worker)
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": node,
                        "tid": worker,
                        "args": {"name": f"worker {worker}"},
                    }
                )
            events.append(
                {
                    "name": op_type,
                    "cat": "op",
                    "ph": "X",
                    "pid": node,
                    "tid": worker,
                    "ts": _us(issued),
                    "dur": _us(completed - issued),
                    "args": {"keys": nkeys},
                }
            )
        for name, arrived, started, handled in trace.server:
            events.append(
                {
                    "name": name,
                    "cat": "server",
                    "ph": "X",
                    "pid": node,
                    "tid": SERVER_TID,
                    "ts": _us(started),
                    "dur": _us(handled - started),
                    "args": {"arrived": _us(arrived), "wait": _us(started - arrived)},
                }
            )
        for name, src, dst, sent, delivered, size_bytes in trace.net:
            events.append(
                {
                    "name": name,
                    "cat": "net",
                    "ph": "X",
                    "pid": node,
                    "tid": NETWORK_TID,
                    "ts": _us(sent),
                    "dur": _us(delivered - sent),
                    "args": {"src": src, "dst": dst, "bytes": size_bytes},
                }
            )
        for key, requested, removed, installed in trace.reloc:
            events.append(
                {
                    "name": f"relocate key {key}",
                    "cat": "relocation",
                    "ph": "X",
                    "pid": node,
                    "tid": RELOCATION_TID,
                    "ts": _us(requested),
                    "dur": _us(installed - requested),
                    "args": {
                        "key": key,
                        "removed_at": _us(removed),
                        "blocked": _us(installed - removed),
                    },
                }
            )
        for at, name, args in trace.markers:
            events.append(
                {
                    "name": name,
                    "cat": "cluster",
                    "ph": "i",
                    "s": "g",
                    "pid": node,
                    "tid": 0,
                    "ts": _us(at),
                    "args": dict(args),
                }
            )
        node_samples = []
        for at, values in trace.samples:
            args = dict(zip(trace.counter_names, values))
            events.append(
                {
                    "name": "PSMetrics",
                    "cat": "telemetry",
                    "ph": "C",
                    "pid": node,
                    "tid": 0,
                    "ts": _us(at),
                    "args": args,
                }
            )
            node_samples.append({"t": at, "counters": args})
        if node_samples:
            samples[str(node)] = node_samples
        for key, per_key in trace.heat.items():
            # The same key can be accessed from several nodes; accumulate.
            entry = heatmap.setdefault(str(key), {"accesses": 0, "buckets": {}})
            entry["accesses"] += sum(per_key.values())
            buckets = entry["buckets"]
            for bucket, count in per_key.items():
                label = str(bucket)
                buckets[label] = buckets.get(label, 0) + count
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "repro": {
            "system": system,
            "time_domain": tracer.time_domain,
            "heatmap_interval": tracer.config.heatmap_interval,
            "metrics_interval": tracer.config.metrics_interval,
            "summary": tracer.summary(),
            "heatmap": heatmap,
            "samples": samples,
        },
    }


def validate_trace(document: Any) -> None:
    """Validate ``document`` against the Chrome trace-event schema subset.

    Raises :class:`~repro.errors.ObservabilityError` naming the first
    malformed event.  Used by the tests, the ``repro.obs.report`` CLI
    (``--validate``), and the CI ``obs-smoke`` job.
    """
    if not isinstance(document, dict):
        raise ObservabilityError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ObservabilityError("trace document is missing the traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ObservabilityError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            raise ObservabilityError(f"{where} has unknown phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ObservabilityError(f"{where} is missing a string name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ObservabilityError(f"{where} is missing integer {field!r}")
        if phase == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ObservabilityError(f"{where} has invalid ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ObservabilityError(f"{where} has invalid dur {dur!r}")
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            raise ObservabilityError(f"{where} instant event has invalid scope")
        if phase == "C" and not isinstance(event.get("args"), dict):
            raise ObservabilityError(f"{where} counter event has no args")


def load_trace(path: str) -> Dict[str, Any]:
    """Read a trace file written by :meth:`Tracer.export`."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            return json.load(stream)
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot read trace file {path!r}: {exc}") from exc
