"""Tracing and telemetry: per-op spans, latency histograms, Perfetto export.

Opt-in, zero-overhead-when-off observability for every execution mode:

* pass ``trace=TraceConfig()`` to
  :func:`~repro.experiments.runner.make_parameter_server` (or any
  ``ParameterServer`` constructor) to install a :class:`Tracer`,
* every client operation, server-handled message, wire message, and
  relocation records a span with its simulated-time breakdown; membership
  events appear as instant markers; ``PSMetrics`` counters are sampled into
  per-node time series and per-key accesses into a hot-key heatmap,
* ``ps.tracer.export("trace.json")`` writes a Chrome trace-event / Perfetto
  timeline; ``python -m repro.obs.report trace.json`` summarizes it,
* traced runs are **bit-identical** to untraced runs (the hooks observe
  already-computed times; no kernel events, no RNG draws), on the
  sequential engine, the ``jobs=N`` parallel engine (shard buffers merge
  over the existing result payloads), and — with wall-clock spans — the
  real multiprocessing backend.

See docs/architecture.md, "Observability".
"""

from repro.obs.config import DEFAULT_SAMPLED_COUNTERS, TraceConfig
from repro.obs.core import NodeTrace, Tracer
from repro.obs.export import build_trace, load_trace, validate_trace

__all__ = [
    "DEFAULT_SAMPLED_COUNTERS",
    "NodeTrace",
    "TraceConfig",
    "Tracer",
    "build_trace",
    "load_trace",
    "validate_trace",
]
