#!/usr/bin/env python3
"""Crash-consistent durability: a node dies mid-training and loses nothing.

**Paper anchor:** *Dynamic Parameter Allocation in Parameter Servers* keeps
exactly one copy of every parameter under pure relocation (§3.2) — the
paper's outlook (§7) names fault tolerance as the open flank of that
design, since a crashed node takes its shard with it.  This example runs
the DSGD matrix-factorization workload (§4.2) with the durability subsystem
installed (``repro.durability``: a per-node delta write-ahead log behind a
transparent storage proxy, plus simulated-time checkpoints) and shows that
a crash-and-restart becomes lossless *and exact*:

1. **Failure-free reference** — the same workload, same seed, no durability
   and no crash; its final model is the comparison target.
2. **Durable run with a crash** — after the first epoch, node 2 fails and
   restarts at the same boundary.  Its volatile state is wiped; recovery
   rebuilds every key it owned from the latest checkpoint plus a WAL-suffix
   replay and re-admits the machine through the normal joining rebalance.
3. **Exactness check** — zero lost keys, and the final model is
   **bit-identical** to the failure-free reference: replay re-applies the
   same float64 deltas in the same per-key order, so not a single bit may
   differ.

Try ``DURABILITY = None`` to see the contrast: under pure relocation the
crash then loses the failed node's keys (``PSMetrics.lost_keys``).

Run with::

    python examples/crash_recovery.py
"""

import numpy as np

from repro.durability import DurabilityConfig
from repro.experiments import MFScale, make_elastic_mf

SYSTEM = "lapse"   # pure relocation: one copy of every key, no replicas
CAPACITY = 3
CRASH_NODE = 2
EPOCHS = 3
DURABILITY = DurabilityConfig()  # try None: the crash becomes lossy
SCALE = MFScale(num_rows=120, num_cols=32, num_entries=2000, rank=4)


def train(durability, crash_after_first_epoch):
    elastic, trainer = make_elastic_mf(
        SYSTEM, num_nodes=CAPACITY, scale=SCALE, workers_per_node=2, seed=0,
        durability=durability,
    )
    for index in range(EPOCHS):
        result = elastic.run_epoch(trainer, compute_loss=False)
        print(f"  epoch {index}: {result.duration * 1e3:7.2f} ms simulated")
        if index == 0 and crash_after_first_epoch:
            now = elastic.ps.simulated_time
            elastic.fail_at(now, CRASH_NODE)
            elastic.rejoin_at(now, CRASH_NODE)
            print(f"  -> node {CRASH_NODE} crashes and restarts at this boundary")
    return elastic


def main():
    print(f"Failure-free reference ({SYSTEM!r}, {CAPACITY} nodes, no durability)")
    reference = train(durability=None, crash_after_first_epoch=False)
    reference_params = reference.ps.all_parameters()

    print("\nDurable run: WAL + checkpoints installed, crash after epoch 0")
    elastic = train(durability=DURABILITY, crash_after_first_epoch=True)
    ps = elastic.ps
    metrics = ps.metrics()

    print(f"\n  WAL activity: {metrics.wal_appends} appends, "
          f"{metrics.wal_bytes} logged bytes, {metrics.checkpoints} checkpoints")
    print(f"  recovery: {metrics.wal_recovered_keys} keys rebuilt from the log "
          f"({metrics.replayed_deltas} deltas replayed), "
          f"{metrics.lost_keys} lost")
    print(f"  node {CRASH_NODE} ended as "
          f"{elastic.membership.state_of(CRASH_NODE)!r}")

    exact = np.array_equal(ps.all_parameters(), reference_params)
    print(f"  final model bit-identical to the failure-free reference: {exact}")
    if DURABILITY is not None:
        assert metrics.lost_keys == 0 and exact


if __name__ == "__main__":
    main()
