#!/usr/bin/env python3
"""Hybrid management: replicate the hot keys, relocate the long tail.

**Paper anchor:** the outlook of *Dynamic Parameter Allocation in Parameter
Servers* (§3 introduces relocation; §3.4/Table 1 analyse what each management
technique does to per-key consistency) sketches combining multiple management
techniques inside one server, the direction later formalized as NuPS
(Renz-Wieland et al., SIGMOD 2022).  This example runs that combination: the
``hybrid`` PS assigns a technique **per key** via the hot-key policies of
``repro.ps.partition``.

The workload is deliberately skewed, like the paper's KGE and word-vector
tasks (§4.3, §4.4): every worker keeps hammering a handful of cluster-wide
*hot* keys (relation embeddings / frequent words) and sweeps a private range
of *cold* keys (entity embeddings / rare words) that it localizes first.
Watch three things in the output:

1. **Per-key routing** — the hot keys end up *replicated* on every accessing
   node while staying with their owner; the cold keys end up *relocated* to
   their single accessor (``HybridPS.key_management``).
2. **Split maintenance price** — relocations happen only for the long tail,
   synchronization traffic is paid only for the hot set (compare the same
   counters in ``examples/replication_comparison.py``, where each pure
   strategy pays its price for *every* key).
3. **Per-key consistency** (§3.4 / Table 1) — ``HybridPS.key_guarantees``
   classifies each key by the technique that manages it: relocated keys keep
   per-key sequential consistency for synchronous operations, replicated
   keys trade it for eventual consistency plus the session guarantees.

Run with::

    python examples/hybrid_management.py
"""

import numpy as np

from repro import ClusterConfig, ParameterServerConfig
from repro.ps import HybridPS

NUM_NODES = 4
WORKERS_PER_NODE = 2
NUM_KEYS = 64
HOT_KEYS = [0, 1, 2, 3]
COLD_BASE = 8
ROUNDS = 30
VALUE_LENGTH = 8


def worker(client, worker_id):
    rng = client.rng
    private = COLD_BASE + worker_id  # one cold key per worker
    yield from client.localize([private])  # relocate the cold key here once
    for _ in range(ROUNDS):
        hot = int(rng.choice(HOT_KEYS))
        values = yield from client.pull([hot, private])
        update = np.ones((2, VALUE_LENGTH)) * 0.01
        yield from client.push([hot, private], update)
        del values
    yield from client.barrier()
    return None


def main() -> None:
    cluster = ClusterConfig(
        num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, seed=7
    )
    # Threshold 2: a node replicates a key after its second remote read, so
    # one-off accesses stay relocatable (the runner's default for `hybrid`).
    config = ParameterServerConfig(
        num_keys=NUM_KEYS, value_length=VALUE_LENGTH, hot_key_threshold=2
    )
    ps = HybridPS(cluster, config)
    ps.run_workers(worker)
    metrics = ps.metrics()

    print(f"simulated time: {ps.simulated_time * 1e3:.3f} ms")
    print(f"local read fraction: {metrics.local_read_fraction:.3f}")
    print(
        f"maintenance: {metrics.relocations} relocations (long tail) vs "
        f"{metrics.replica_sync_bytes} sync bytes over "
        f"{metrics.replica_creates} replicas (hot set)"
    )

    print("\nper-key technique and consistency classification (Table 1):")
    header = f"{'key':>4}  {'managed by':<12} {'holders':<14} {'sequential':<11} {'eventual':<9} {'session'}"
    print(header)
    print("-" * len(header))
    sample = HOT_KEYS + [COLD_BASE, COLD_BASE + 3, COLD_BASE + 7]
    for key in sample:
        technique = ps.key_management(key)
        guarantees = ps.key_guarantees(key)
        holders = ps.replica_holders(key) or (ps.current_owner(key),)
        print(
            f"{key:>4}  {technique:<12} {str(holders):<14} "
            f"{str(guarantees['sequential']):<11} {str(guarantees['eventual']):<9} "
            f"{guarantees['session']}"
        )

    # Both techniques land every update exactly once (conflict-free
    # aggregation for replicas, queue-and-drain for relocations).
    expected_cold = ROUNDS * 0.01
    for worker_id in range(NUM_NODES * WORKERS_PER_NODE):
        value = float(ps.parameter(COLD_BASE + worker_id)[0])
        assert abs(value - expected_cold) < 1e-9, (worker_id, value)
    total_hot = sum(float(ps.parameter(key)[0]) for key in HOT_KEYS)
    expected_hot_total = NUM_NODES * WORKERS_PER_NODE * ROUNDS * 0.01
    assert abs(total_hot - expected_hot_total) < 1e-9
    print(
        "\nevery update landed exactly once: cold keys each hold "
        f"{expected_cold:.2f}, hot keys sum to {total_hot:.2f}"
    )


if __name__ == "__main__":
    main()
