#!/usr/bin/env python3
"""Relocation vs. replication: the comparison the paper's related work sets up.

**Paper anchor:** goes beyond the paper's own systems (§2/Table 1 classify
the stale PS's *bounded-staleness replicas*; the related-work section
contrasts dynamic allocation with replication-based parameter management,
later formalized in the NuPS follow-up).  This example opposes the three
parameter-management strategies on one skewed workload: static allocation
(classic PS with fast local access), relocation (Lapse), and eager
replication (the replica PS).

Every worker hammers a small set of cluster-wide hot keys plus a private
key range.  Relocation bounces the hot keys between the accessing nodes;
replication installs a copy on every accessing node once and then pays
synchronization traffic instead.  The script prints, per system, the
simulated run time, access locality, network traffic, and each strategy's
maintenance price (relocations vs. replica synchronization bytes).

Run with::

    python examples/replication_comparison.py
"""

import numpy as np

from repro import ClassicSharedMemoryPS, ClusterConfig, LapsePS, ParameterServerConfig, ReplicaPS

NUM_NODES = 4
WORKERS_PER_NODE = 2
NUM_KEYS = 64
HOT_KEYS = [0, 1, 2, 3]
ROUNDS = 30
VALUE_LENGTH = 8


def worker_fn(use_localize):
    def worker(client, worker_id):
        rng = client.rng
        private = 8 + worker_id  # one private key per worker
        for round_index in range(ROUNDS):
            hot = int(rng.choice(HOT_KEYS))
            if use_localize and round_index % 10 == 0:
                yield from client.localize([hot])
            values = yield from client.pull([hot, private])
            update = np.ones((2, VALUE_LENGTH)) * 0.01
            yield from client.push([hot, private], update)
            del values
        yield from client.barrier()
        return None

    return worker


def run(ps, use_localize):
    ps.run_workers(worker_fn(use_localize))
    metrics = ps.metrics()
    return {
        "system": ps.name,
        "sim_time_ms": ps.simulated_time * 1e3,
        "local_read_frac": metrics.local_read_fraction,
        "remote_messages": ps.network.stats.remote_messages,
        "bytes_sent": ps.network.stats.bytes_sent,
        "relocations": metrics.relocations,
        "replicas": metrics.replica_creates,
        "sync_bytes": metrics.replica_sync_bytes,
    }


def main() -> None:
    cluster = ClusterConfig(num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, seed=7)
    config = ParameterServerConfig(num_keys=NUM_KEYS, value_length=VALUE_LENGTH)
    replica_ps = ReplicaPS(cluster, config)
    rows = [
        run(ClassicSharedMemoryPS(cluster, config), use_localize=False),
        run(LapsePS(cluster, config), use_localize=True),
        run(replica_ps, use_localize=False),
    ]
    header = (
        f"{'system':<20} {'time (ms)':>10} {'local reads':>12} {'remote msgs':>12} "
        f"{'bytes':>10} {'relocations':>12} {'replicas':>9} {'sync bytes':>11}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['system']:<20} {row['sim_time_ms']:>10.3f} {row['local_read_frac']:>12.3f} "
            f"{row['remote_messages']:>12} {row['bytes_sent']:>10} {row['relocations']:>12} "
            f"{row['replicas']:>9} {row['sync_bytes']:>11}"
        )
    owner_value = float(replica_ps.parameter(0)[0])
    copies = [
        float(state.replicas[0][0])
        for state in replica_ps.states
        if 0 in state.replicas
    ]
    print(
        "\nRelocation pays per move (a hot key bounces between its accessors);\n"
        "replication pays a continuous synchronization stream but serves every\n"
        "node's reads locally.  The replica copies converge after the final\n"
        f"synchronization round: owner holds {owner_value:.2f}, "
        f"{len(copies)} replicas hold {sorted(set(round(c, 2) for c in copies))}."
    )


if __name__ == "__main__":
    main()
