#!/usr/bin/env python3
"""Empirically checking the per-key consistency guarantees of Table 1.

**Paper anchor:** Table 1 and the consistency analysis of §3.4 (Theorems
1-3): which per-key guarantees each PS architecture provides, measured on
recorded executions rather than proved.  The replica PS row shows the
weakening that §3.4 predicts for replicated/cached reads.

Runs a small adversarial counter workload (tagged cumulative pushes and pulls
on a single key, with relocations) on the classic PS, Lapse, the stale PS,
and the replication-based PS, records the client-observed history, and
evaluates the consistency properties of Table 1 with the checkers from
:mod:`repro.consistency`.

Run with::

    python examples/consistency_check.py
"""

import numpy as np

from repro.config import ClusterConfig, ParameterServerConfig
from repro.consistency import History, UpdateTagger, consistency_report
from repro.ps import ClassicPS, LapsePS, ReplicaPS, StalePS


def run_workload(ps, use_localize):
    """Alternating tagged pushes and pulls on key 0 from every worker."""
    tagger = UpdateTagger()
    tags = {}
    for worker in range(ps.cluster.total_workers):
        for i in range(3):
            tags[(worker, i)] = tagger.next_update()

    def worker_fn(client, worker_id):
        records = []
        sequence = 0
        for i in range(3):
            if use_localize and i % 2 == 0:
                yield from client.localize([0])
            push_id, value = tags[(worker_id, i)]
            update = np.zeros((1, ps.ps_config.value_length))
            update[0, 0] = value
            invoked = client.sim.now
            yield from client.push([0], update)
            records.append(("push", sequence, invoked, client.sim.now, push_id, None))
            sequence += 1
            invoked = client.sim.now
            values = yield from client.pull([0])
            records.append(("pull", sequence, invoked, client.sim.now, None, values[0, 0]))
            sequence += 1
        return records

    history = History(key=0)
    for worker_id, records in enumerate(ps.run_workers(worker_fn)):
        for kind, sequence, invoked, completed, push_id, value in records:
            if kind == "push":
                history.record_push(worker_id, sequence, invoked, completed, push_id)
            else:
                history.record_pull(worker_id, sequence, invoked, completed, value)
    return history


def main() -> None:
    cluster = ClusterConfig(num_nodes=3, workers_per_node=2, seed=1)
    config = ParameterServerConfig(num_keys=4, value_length=2)
    systems = [
        ("Classic PS", ClassicPS(cluster, config), False),
        ("Lapse (with relocations)", LapsePS(cluster, config), True),
        ("Stale PS", StalePS(cluster, config), False),
        ("Replica PS", ReplicaPS(cluster, config), False),
    ]
    print(f"{'system':<28} {'eventual':>9} {'client-centric':>15} {'causal':>7} {'sequential':>11}")
    for name, ps, use_localize in systems:
        history = run_workload(ps, use_localize)
        report = consistency_report([history])
        print(
            f"{name:<28} {str(report['eventual']):>9} {str(report['client-centric']):>15} "
            f"{str(report['causal']):>7} {str(report['sequential']):>11}"
        )
    print(
        "\n(The stale and replica PS rows may legitimately show False for the stronger\n"
        " properties: bounded-staleness replicas and asynchronously synchronized\n"
        " replicas both allow reads to miss other workers' recent writes; see §3.4.\n"
        " The replica PS still converges — repro.consistency.check_eventual_after\n"
        " verifies eventual consistency against an explicit quiescence point.)"
    )


if __name__ == "__main__":
    main()
