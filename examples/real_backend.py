#!/usr/bin/env python3
"""Quick start for the real multi-core execution backend.

**Paper anchor:** §3.3 (shared-memory local access) and §4.2 (scalability) —
the simulator models these; this backend *does* them: workers are
``multiprocessing`` processes, parameter shards live in
``multiprocessing.shared_memory``, and ownership moves through a shared
location directory, all behind the same API as the simulator.

The example runs the same small DSGD matrix-factorization job on both
backends and prints the statistical-equivalence comparison: the final loss
agrees (bit-for-bit for this barrier-synchronized workload) and the
deterministic access/relocation counters are exactly equal, while wall-clock
epoch time replaces simulated time.

Run with::

    PYTHONPATH=src python examples/real_backend.py
"""

import multiprocessing

from repro.experiments.runner import MFScale, run_mf_experiment

SCALE = MFScale(num_rows=128, num_cols=32, num_entries=1500, rank=8)


def run(system: str, backend: str):
    return run_mf_experiment(
        system,
        num_nodes=2,
        workers_per_node=1,
        scale=SCALE,
        epochs=2,
        compute_loss=True,
        seed=0,
        backend=backend,
    )


def main() -> None:
    if "fork" not in multiprocessing.get_all_start_methods():
        print("the real backend needs the fork start method (Linux); skipping")
        return

    for system in ("classic", "lapse"):
        sim = run(system, "sim")
        real = run(system, "real")
        print(f"=== {system}: 2 nodes x 1 worker process, {SCALE.num_entries} entries ===")
        print(f"  final loss      sim={sim.final_loss:.12f}  real={real.final_loss:.12f}")
        print(f"  epoch duration  sim={sim.epoch_duration * 1e3:8.2f} ms (simulated)"
              f"  real={real.epoch_duration * 1e3:8.2f} ms (wall clock)")
        for counter in ("localize_calls", "localized_keys", "relocations",
                        "pulls_local", "pulls_remote", "pushes_local", "pushes_remote"):
            sim_value = getattr(sim.metrics, counter)
            real_value = getattr(real.metrics, counter)
            marker = "==" if sim_value == real_value else "!="
            print(f"  {counter:<16} sim={sim_value:<8} {marker} real={real_value}")
        print()


if __name__ == "__main__":
    main()
