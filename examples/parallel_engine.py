#!/usr/bin/env python
"""Parallel simulation engine demo: one core vs N shard processes.

Runs the matrix-factorization workload of Figure 6 (scaled down) twice — once on the
sequential discrete-event kernel (``jobs=1``) and once with the simulated
nodes forked across shard processes (``jobs=N``) — then prints both
wall-clock times and verifies that the simulated results are bit-identical
(epoch durations at full float precision, message and byte counts).

Usage::

    PYTHONPATH=src python examples/parallel_engine.py            # jobs = cores
    PYTHONPATH=src python examples/parallel_engine.py --jobs 4
    PYTHONPATH=src python examples/parallel_engine.py --smoke    # CI-sized

On a single-core host the sharded run still works (and still matches bit
for bit) — it just cannot be faster, which the output says plainly.
"""

import argparse
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import MFScale, run_mf_experiment  # noqa: E402


def fingerprint(result):
    return (
        tuple(repr(epoch.duration) for epoch in result.epochs),
        result.remote_messages,
        result.bytes_sent,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="shard processes for the parallel run (default: host core count)",
    )
    parser.add_argument(
        "--system", default="lapse", help="parameter-server system (default: lapse)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workload (a few seconds)"
    )
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 2:
        # Nothing to fork against: still demonstrate the API with two shards.
        jobs = 2
    if args.smoke:
        scale = MFScale(num_rows=128, num_cols=32, num_entries=4000, rank=4)
    else:
        scale = MFScale(num_rows=512, num_cols=64, num_entries=20000, rank=8)

    settings = dict(
        num_nodes=4,
        workers_per_node=2,
        scale=scale,
        epochs=2,
        compute_loss=False,
        seed=0,
    )
    print(
        f"{args.system} matrix factorization: {scale.num_entries} entries, "
        f"4 nodes x 2 workers, 2 epochs"
    )

    results = {}
    times = {}
    for run_jobs in (1, jobs):
        label = "sequential kernel" if run_jobs == 1 else f"{run_jobs} shard processes"
        start = time.perf_counter()
        results[run_jobs] = run_mf_experiment(args.system, jobs=run_jobs, **settings)
        times[run_jobs] = time.perf_counter() - start
        print(f"  jobs={run_jobs} ({label:>20s}): {times[run_jobs]:7.3f}s wall")

    if fingerprint(results[1]) != fingerprint(results[jobs]):
        print("ERROR: simulated results diverged between jobs=1 and the shard run")
        return 1
    print(
        "  simulated results bit-identical "
        f"(epoch {results[1].epoch_duration * 1e3:.3f} ms, "
        f"{results[1].remote_messages} remote messages)"
    )
    speedup = times[1] / times[jobs]
    cores = os.cpu_count() or 1
    print(f"  wall-clock speedup: {speedup:.2f}x on {cores} host core(s)")
    if cores < 2:
        print("  (single-core host: shard processes cannot run concurrently)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
