#!/usr/bin/env python
"""Tracing tour: trace a run, prove bit-identity, export a Perfetto timeline.

Runs an elastic matrix-factorization workload on Lapse (the DSGD task of
Figure 6, with a node joining mid-run) with the tracing subsystem enabled
(``repro.obs``), then walks through what it recorded — including the
relocation timeline behind the paper's §3.3 localize protocol:

1. **Bit-identity** — the same run without tracing produces the exact same
   simulated results (epoch durations at full float precision, traffic,
   metric counters): tracing is pure observation.
2. **Latency histograms** — streaming p50/p90/p99 per operation type,
   merged across all nodes.
3. **Timeline export** — a Chrome trace-event JSON with per-worker op
   spans, server/network/relocation lanes, membership markers, and counter
   time series.  Load it at https://ui.perfetto.dev (or ``chrome://tracing``)
   to browse the cluster's timeline interactively.

Usage::

    PYTHONPATH=src python examples/tracing_tour.py
    PYTHONPATH=src python examples/tracing_tour.py --smoke --out /tmp/trace.json

Afterwards, summarize any exported trace from the command line::

    PYTHONPATH=src python -m repro.obs.report /tmp/trace.json --validate
"""

import argparse
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cluster import ClusterSchedule  # noqa: E402
from repro.experiments import MFScale  # noqa: E402
from repro.experiments.runner import make_elastic_mf  # noqa: E402
from repro.obs import TraceConfig, validate_trace  # noqa: E402


def run(scale, trace=None, epochs=2):
    """One elastic MF run: node 2 joins mid-run, keys rebalance live."""
    schedule = ClusterSchedule().join(0.002, node=2)
    elastic, trainer = make_elastic_mf(
        "lapse",
        num_nodes=3,
        initial_nodes=(0, 1),
        schedule=schedule,
        scale=scale,
        workers_per_node=2,
        seed=0,
        trace=trace,
    )
    epoch_results = [elastic.run_epoch(trainer) for _ in range(epochs)]
    return elastic.ps, epoch_results


def fingerprint(ps, epoch_results):
    return (
        tuple(repr(epoch.duration) for epoch in epoch_results),
        ps.network.stats.remote_messages,
        ps.network.stats.bytes_sent,
        ps.metrics().as_dict(),
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="trace.json", help="trace output path (default: trace.json)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workload (a few seconds)"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = MFScale(num_rows=48, num_cols=16, num_entries=600, rank=4)
    else:
        scale = MFScale(num_rows=128, num_cols=32, num_entries=4000, rank=8)

    print("1. running untraced and traced (elastic MF on lapse, node 2 joins mid-run)")
    plain_ps, plain_epochs = run(scale)
    traced_ps, traced_epochs = run(scale, trace=TraceConfig())
    if fingerprint(plain_ps, plain_epochs) != fingerprint(traced_ps, traced_epochs):
        print("ERROR: tracing changed the simulated results")
        return 1
    print(
        "   bit-identical: epoch durations, traffic, and every metric counter "
        "match the untraced run exactly"
    )

    tracer = traced_ps.tracer
    print("\n2. per-op latency histograms (streaming, merged across nodes):")
    for op_type, hist in sorted(tracer.op_histograms().items()):
        print(
            f"   {op_type:<12s} count={hist.count:<6d} "
            f"p50={hist.p50 * 1e6:8.1f}us  p90={hist.percentile(0.9) * 1e6:8.1f}us  "
            f"p99={hist.p99 * 1e6:8.1f}us"
        )

    document = tracer.export(args.out)
    validate_trace(document)
    summary = tracer.summary()
    markers = [e for e in document["traceEvents"] if e["ph"] == "i"]
    print(f"\n3. exported {args.out}: {len(document['traceEvents'])} events, "
          f"{summary['span_count']} spans, {len(markers)} cluster markers")
    for event in markers[:6]:
        print(f"   marker @ {event['ts'] / 1e3:8.3f} ms  {event['name']}")
    print("   open https://ui.perfetto.dev and load the file to browse the timeline;")
    print(f"   or run: python -m repro.obs.report {args.out} --validate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
