#!/usr/bin/env python3
"""Elastic cluster runtime: grow, shrink, and survive failures at run time.

**Paper anchor:** the outlook of *Dynamic Parameter Allocation in Parameter
Servers* (§7) notes that DPA makes a parameter server adaptable at run time —
relocation is the mechanism that lets a cluster change *while training runs*.
This example drives one full elastic lifecycle of the DSGD matrix-
factorization workload (§4.2) through ``repro.cluster``:

1. **Join mid-epoch** — a reserve node joins while an epoch is running; the
   :class:`~repro.ps.partition.ElasticPartitioner` computes its balanced key
   share (movement-minimizing), home duties are handed over, and ownership
   migrates through the *same* relocation protocol the application uses
   (§3.2).  The next epoch is faster: more workers, all accesses local.
2. **Graceful drain** — a node announces departure; its workers finish the
   epoch, its keys relocate away, and it leaves once it owns nothing.  A
   static classic PS cannot do either (try ``SYSTEM = "classic"``: the
   drained node stays "draining" forever).
3. **Failure with recovery** — standby replicas are provisioned
   (``ensure_backups``), then a node crashes.  Under the ``hybrid`` policy
   every key it owned is recovered from a surviving replica (0 lost); under
   pure relocation (``lapse``) exactly one copy of each parameter exists, so
   the failed node's keys are lost and re-initialized (counted in
   ``PSMetrics.lost_keys``).

Run with::

    python examples/elastic_scaling.py
"""

from repro.experiments import MFScale, make_elastic_mf

SYSTEM = "hybrid"  # try "lapse" (keys are lost on failure) or "classic"
CAPACITY = 3       # node 2 is reserve capacity at start
SCALE = MFScale(num_rows=150, num_cols=24, num_entries=3000, rank=4,
                compute_time_per_entry=25e-6)


def main():
    elastic, trainer = make_elastic_mf(
        SYSTEM, num_nodes=CAPACITY, initial_nodes=[0, 1],
        scale=SCALE, workers_per_node=2, seed=0,
    )
    ps = elastic.ps
    membership = elastic.membership

    def states():
        return {node: membership.state_of(node) for node in range(CAPACITY)}

    def epoch(label):
        result = elastic.run_epoch(trainer, compute_loss=False)
        print(f"  {label:<28s} epoch time {result.duration * 1e3:7.2f} ms   "
              f"membership {states()}")
        return result

    print(f"Elastic lifecycle on the {SYSTEM!r} PS "
          f"({CAPACITY} node capacity, 2 workers/node)\n")

    print("Phase 1: baseline on nodes 0 and 1")
    baseline = epoch("baseline")

    print("\nPhase 2: node 2 joins MID-epoch (keys migrate while training runs)")
    elastic.join_at(ps.simulated_time + 0.5 * baseline.duration, node=2)
    epoch("join epoch (disruption)")
    epoch("post-join (3 nodes)")
    metrics = ps.metrics()
    print(f"  -> rebalanced {metrics.rebalanced_keys} keys in "
          f"{metrics.rebalance_time.mean * 1e3:.2f} ms "
          f"({metrics.relocations} relocations so far)")

    print("\nPhase 3: node 1 drains gracefully")
    elastic.drain_at(ps.simulated_time, node=1)
    epoch("drain epoch")
    epoch("post-drain (nodes 0 and 2)")

    if elastic.rebalancer.supports_rebalance:
        print("\nPhase 4: standby replicas, then node 2 crashes")
        installed = elastic.ensure_backups()
        print(f"  provisioned {installed} standby replicas")
        elastic.fail_at(ps.simulated_time, node=2)
        epoch("post-failure (node 0 only)")
        print(f"  -> recovered {elastic.recovered_keys} keys from replicas, "
              f"lost {elastic.lost_keys}")
    else:
        print("\nPhase 4 skipped: a static allocation cannot re-home keys, so "
              "a node failure would be unrecoverable")

    print(f"\nModel intact: {ps.all_parameters().shape} parameters, "
          f"final membership {states()}")


if __name__ == "__main__":
    main()
