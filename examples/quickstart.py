#!/usr/bin/env python3
"""Quickstart: the Lapse API on a small simulated cluster.

**Paper anchor:** Table 2 (the PS client API) and §3.1 — this is the "hello
world" of dynamic parameter allocation, not tied to any one figure.

Demonstrates the three PS primitives of the paper (Table 2) — ``pull``,
``push`` and the new ``localize`` — and shows the effect of dynamic parameter
allocation on where parameters live and how much network traffic accesses
cause.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import ClusterConfig, LapsePS, ParameterServerConfig


def main() -> None:
    # A cluster of 4 simulated nodes with 2 worker threads each.
    cluster = ClusterConfig(num_nodes=4, workers_per_node=2, seed=0)
    ps_config = ParameterServerConfig(num_keys=64, value_length=4)
    ps = LapsePS(cluster, ps_config)

    print("Initial owner of key 42:", ps.current_owner(42))

    def worker(client, worker_id):
        # Worker 0 (on node 0) localizes key 42, then accesses it locally.
        if worker_id == 0:
            yield from client.localize([42])
            values = yield from client.pull([42])
            print(f"worker {worker_id}: pulled key 42 -> {values[0]}")
            yield from client.push([42], np.ones((1, 4)))
        # Every worker increments key 7 (homed on node 0) concurrently.
        yield from client.push([7], np.full((1, 4), 1.0))
        # Synchronous pulls always see a consistent (per-key sequential) view.
        values = yield from client.pull([7])
        return float(values[0, 0])

    results = ps.run_workers(worker)

    print("Owner of key 42 after localize:", ps.current_owner(42))
    print("Value of key 42:", ps.parameter(42))
    print("Value of key 7 (8 workers pushed 1.0):", ps.parameter(7))
    print("Per-worker observations of key 7:", results)

    metrics = ps.metrics()
    print("\n--- metrics ---")
    print("simulated time:        ", f"{ps.simulated_time * 1e3:.3f} ms")
    print("relocations:           ", metrics.relocations)
    print("mean relocation time:  ", f"{metrics.relocation_time.mean * 1e6:.1f} us")
    print("local key reads:       ", metrics.key_reads_local)
    print("remote key reads:      ", metrics.key_reads_remote)
    print("remote messages:       ", ps.network.stats.remote_messages)


if __name__ == "__main__":
    main()
