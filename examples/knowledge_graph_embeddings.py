#!/usr/bin/env python3
"""Knowledge-graph embeddings with data clustering and latency hiding.

**Paper anchor:** Figure 1 (the paper's motivating KGE plot) and Figure 7
(KGE epoch run times); the relocation statistics such runs produce are the
subject of Table 5.

Trains ComplEx embeddings of a synthetic knowledge graph on Lapse (the
Figure 1 / Figure 7 workload): relation parameters are placed by data
clustering (each node localizes the relations of its triples once), entity
parameters are prelocalized one triple ahead (latency hiding).  The script
compares full Lapse against the "only data clustering" variant and a classic
PS with fast local access.

Run with::

    python examples/knowledge_graph_embeddings.py
"""

from repro.config import ClusterConfig, ParameterServerConfig
from repro.data import generate_knowledge_graph
from repro.ml import KGEConfig, KGETrainer
from repro.ml.kge import KGEKeySpace
from repro.ps import ClassicSharedMemoryPS, LapsePS

NUM_NODES = 4
WORKERS_PER_NODE = 2


def run(ps_cls, graph, latency_hiding=True, epochs=2):
    config = KGEConfig(
        model="complex",
        entity_dim=8,
        num_negatives=2,
        compute_time_per_triple=200e-6,
        latency_hiding=latency_hiding,
    )
    keyspace = KGEKeySpace(graph, config)
    cluster = ClusterConfig(num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, seed=0)
    ps = ps_cls(
        cluster,
        ParameterServerConfig(num_keys=keyspace.num_keys, value_length=config.value_length),
    )
    trainer = KGETrainer(ps, graph, config, seed=0)
    results = trainer.train(num_epochs=epochs)
    return results, ps.metrics()


def main() -> None:
    graph = generate_knowledge_graph(
        num_entities=400, num_relations=8, num_triples=800, seed=0
    )
    print(
        f"Synthetic knowledge graph: {graph.num_entities} entities, "
        f"{graph.num_relations} relations, {graph.num_triples} triples\n"
    )
    variants = [
        ("Classic PS with fast local access", ClassicSharedMemoryPS, True),
        ("Lapse, only data clustering", LapsePS, False),
        ("Lapse (clustering + latency hiding)", LapsePS, True),
    ]
    for name, ps_cls, latency_hiding in variants:
        results, metrics = run(ps_cls, graph, latency_hiding=latency_hiding)
        print(name)
        print("  epoch run times :", ", ".join(f"{r.duration * 1e3:.1f} ms" for r in results))
        print(f"  final log loss  : {results[-1].loss:.4f}")
        print(f"  local reads     : {100 * metrics.local_read_fraction:.1f}%")
        print(f"  relocations     : {metrics.relocations}")
        print(f"  mean reloc time : {metrics.relocation_time.mean * 1e6:.1f} us")
        print()


if __name__ == "__main__":
    main()
