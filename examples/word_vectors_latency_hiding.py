#!/usr/bin/env python3
"""Word vectors with latency hiding (the Figure 8 workload).

**Paper anchor:** Figure 8 (word-vector run time and error over cluster
sizes) and the latency-hiding scheme for negative samples of Appendix A.

Trains skip-gram Word2Vec on a synthetic topic-structured corpus using Lapse:
the words of the next sentence are prelocalized while the current sentence is
processed, and negative samples are drawn from a pre-sampled, pre-localized
pool (skipping candidates lost to localization conflicts).  Prints error over
epochs, the quantity Figure 8b/8c tracks.

Run with::

    python examples/word_vectors_latency_hiding.py
"""

from repro.config import ClusterConfig, ParameterServerConfig
from repro.data import generate_corpus
from repro.ml import Word2VecConfig, Word2VecTrainer
from repro.ps import LapsePS

NUM_NODES = 2
WORKERS_PER_NODE = 2


def main() -> None:
    corpus = generate_corpus(
        vocabulary_size=600, num_sentences=200, mean_sentence_length=8, seed=0
    )
    print(
        f"Synthetic corpus: {corpus.vocabulary_size} words, "
        f"{corpus.num_sentences} sentences, {corpus.num_tokens} tokens\n"
    )
    config = Word2VecConfig(
        dim=8,
        window=2,
        num_negatives=3,
        compute_time_per_pair=50e-6,
        presample_size=100,
        presample_refresh=80,
    )
    cluster = ClusterConfig(num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, seed=0)
    ps = LapsePS(
        cluster,
        ParameterServerConfig(num_keys=2 * corpus.vocabulary_size, value_length=config.dim),
    )
    trainer = Word2VecTrainer(ps, corpus, config, seed=0)

    print(f"{'epoch':>5}  {'epoch time':>12}  {'error %':>8}")
    for result in trainer.train(num_epochs=4):
        print(f"{result.epoch:>5}  {result.duration * 1e3:>10.1f}ms  {result.loss:>8.1f}")

    metrics = ps.metrics()
    print("\nlocal reads            :", f"{100 * metrics.local_read_fraction:.1f}%")
    print("relocations            :", metrics.relocations)
    print("negatives skipped (localization conflicts):", trainer.skipped_negatives)


if __name__ == "__main__":
    main()
