#!/usr/bin/env python3
"""Matrix factorization with parameter blocking (the Figure 6 workload).

**Paper anchor:** Figure 6 (MF epoch run times over cluster sizes) and the
parameter-blocking PAL technique of §3.6.2/§4.3; the low-level baseline it is
measured against appears in Figure 9.

Trains a DSGD low-rank factorization of a synthetic matrix on three parameter
servers — classic (PS-Lite style), classic with fast local access, and Lapse —
and prints epoch run times, training RMSE and access locality, illustrating
why dynamic parameter allocation is needed to exploit the parameter-blocking
PAL technique.

Run with::

    python examples/matrix_factorization_blocking.py
"""

from repro.config import ClusterConfig, ParameterServerConfig
from repro.data import generate_matrix
from repro.ml import MatrixFactorizationConfig, MatrixFactorizationTrainer
from repro.ps import ClassicIPCPS, ClassicSharedMemoryPS, LapsePS

NUM_NODES = 4
WORKERS_PER_NODE = 2
RANK = 8


def run(ps_cls, matrix, epochs=2):
    cluster = ClusterConfig(num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, seed=0)
    ps = ps_cls(cluster, ParameterServerConfig(num_keys=matrix.num_cols, value_length=RANK))
    trainer = MatrixFactorizationTrainer(
        ps,
        matrix,
        MatrixFactorizationConfig(rank=RANK, compute_time_per_entry=10e-6),
        seed=0,
    )
    results = trainer.train(num_epochs=epochs)
    metrics = ps.metrics()
    return results, metrics


def main() -> None:
    matrix = generate_matrix(num_rows=200, num_cols=64, num_entries=6000, rank=RANK, seed=0)
    print(f"Synthetic matrix: {matrix.num_rows}x{matrix.num_cols}, {matrix.num_entries} entries\n")
    for name, ps_cls in [
        ("Classic PS (PS-Lite)", ClassicIPCPS),
        ("Classic PS + fast local access", ClassicSharedMemoryPS),
        ("Lapse (dynamic parameter allocation)", LapsePS),
    ]:
        results, metrics = run(ps_cls, matrix)
        epoch_times = ", ".join(f"{r.duration * 1e3:.1f} ms" for r in results)
        print(f"{name}")
        print(f"  epoch run times : {epoch_times}")
        print(f"  final RMSE      : {results[-1].loss:.4f}")
        print(f"  local reads     : {100 * metrics.local_read_fraction:.1f}%")
        print(f"  relocations     : {metrics.relocations}")
        print()


if __name__ == "__main__":
    main()
