"""Pytest configuration for the repository root.

Ensures the ``src`` layout package is importable even when the project has not
been pip-installed (the benchmark/test environment is offline, so an editable
install may not be possible), and gives every test a per-test timeout so a
deadlocked multiprocessing test (real backend, parallel shard engine) aborts
with a traceback instead of hanging the whole run:

* with the ``pytest-timeout`` plugin installed (CI), every test without an
  explicit ``@pytest.mark.timeout`` gets :data:`DEFAULT_TEST_TIMEOUT`;
* without it (offline environments), a SIGALRM fallback fixture enforces the
  same default where the platform allows (POSIX main thread).
"""

import os
import signal
import sys
import threading

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Per-test timeout in seconds.  Generous: the slowest tier-1 tests (identity
#: sweeps, property-based suites) finish in a few seconds, so only a genuine
#: hang — a deadlocked pipe barrier, a worker that never finishes — hits it.
DEFAULT_TEST_TIMEOUT = 120

try:  # pragma: no cover - which branch runs depends on the environment
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_collection_modifyitems(config, items):
    if not _HAVE_PYTEST_TIMEOUT:
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(DEFAULT_TEST_TIMEOUT))


@pytest.fixture(autouse=True)
def _fallback_test_timeout():
    """SIGALRM-based per-test timeout when pytest-timeout is unavailable."""
    if (
        _HAVE_PYTEST_TIMEOUT
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {DEFAULT_TEST_TIMEOUT}s fallback timeout"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(DEFAULT_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
