"""Pytest configuration for the repository root.

Ensures the ``src`` layout package is importable even when the project has not
been pip-installed (the benchmark/test environment is offline, so an editable
install may not be possible).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
